// SNNSEC_HOT: per-request serving path — steady state must not allocate.
#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checked.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace snnsec::serve {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// The deep canary fires only after this much batch-free quiet: under
/// closed-loop traffic the admission queue transiently empties between
/// batches, and a probe inference in that gap blocks the next batch —
/// measured as a ~2x p99 blowup on a single-core host.
constexpr std::int64_t kDeepCanaryIdleGraceMs = 25;

std::int64_t elapsed_us(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

Server::Server(ServerConfig cfg)
    : Server(std::move(cfg), nullptr) {}

Server::Server(ServerConfig cfg,
               std::shared_ptr<const ModelCache::Artifact> model)
    : cfg_(std::move(cfg)),
      artifact_(model ? std::move(model)
                      : ModelCache::global().acquire(cfg_.model_path)),
      start_(std::chrono::steady_clock::now()),
      batcher_(cfg_.batcher) {
  const std::int64_t t = artifact_->config().time_steps;
  cfg_.min_steps = std::clamp<std::int64_t>(cfg_.min_steps, 1, t);
  SNNSEC_CHECK(cfg_.default_deadline_us >= 0,
               "ServerConfig: default_deadline_us must be >= 0");
  SNNSEC_CHECK(std::isfinite(cfg_.flag_threshold) && cfg_.flag_threshold >= 0.0,
               "ServerConfig: flag_threshold must be finite and >= 0, got "
                   << cfg_.flag_threshold);

  if (cfg_.envelope) {
    envelope_ = cfg_.envelope;
  } else if (!cfg_.envelope_path.empty()) {
    // try_load validates magic/digest/version and requires the envelope's
    // config_hash to match the served model; on any failure the server
    // comes up without a detector instead of refusing to start.
    auto loaded = obs::ActivityEnvelope::try_load(cfg_.envelope_path,
                                                  artifact_->config_hash());
    if (loaded)
      envelope_ = std::make_shared<const obs::ActivityEnvelope>(
          std::move(*loaded));
    else
      SNNSEC_LOG_WARN("serve: envelope '" << cfg_.envelope_path
                                          << "' unusable; online detection "
                                             "disabled");
  }
  if (envelope_) {
    SNNSEC_CHECK(envelope_->ready(),
                 "ServerConfig: injected envelope is not fitted");
    // Wall clock touched once, here: the staleness gauge then advances on
    // the steady clock the hot path already reads.
    const auto now_unix_s =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    detect_age_base_s_ = static_cast<double>(
        now_unix_s - envelope_->created_unix_s());
    SNNSEC_GAUGE_SET("serve.detect.calibration_age_s", detect_age_base_s_);
    SNNSEC_LOG_INFO("serve: online detection armed ("
                    << envelope_->summary() << ", policy="
                    << to_string(cfg_.detect_policy) << ", threshold="
                    << cfg_.flag_threshold << ")");
  }
  if (cfg_.supervisor.enabled)
    sup_ = std::make_unique<Supervisor>(cfg_.supervisor, *artifact_);

  const nn::LenetSpec& arch = artifact_->arch();
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time slot/worker construction.
  slots_.reserve(static_cast<std::size_t>(batcher_.capacity()));
  for (std::int64_t i = 0; i < batcher_.capacity(); ++i) {
    auto slot = std::make_unique<Slot>();
    slot->input = Tensor(
        Shape{1, arch.in_channels, arch.image_size, arch.image_size});
    // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time slot construction.
    slots_.push_back(std::move(slot));
  }
  start_workers(cfg_.workers);
  if (sup_) sup_thread_ = std::thread([this] { supervise_loop(); });
}

Server::~Server() { stop(); }

std::int64_t Server::now_ms() const {
  return elapsed_us(start_, std::chrono::steady_clock::now()) / 1000;
}

std::unique_ptr<Server::Worker> Server::make_worker_context(std::int64_t id) {
  auto w = std::make_unique<Worker>();
  w->id = id;
  w->model = artifact_->make_replica();
  w->runner = std::make_unique<snn::AnytimeRunner>(*w->model,
                                                   cfg_.allow_faults);
  if (envelope_) {
    SNNSEC_CHECK(envelope_->layers().size() ==
                     w->runner->sketch_layers().size(),
                 "serve: envelope calibrated for "
                     << envelope_->layers().size()
                     << " spiking layers, model has "
                     << w->runner->sketch_layers().size());
    w->sketch.configure(w->runner->sketch_layers(), envelope_->buckets());
    w->runner->set_sketch(&w->sketch);
  }
  const std::size_t cap = static_cast<std::size_t>(cfg_.batcher.max_batch);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time batch buffer sizing.
  w->slots.resize(cap);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time batch buffer sizing.
  w->budget.resize(cap);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time batch buffer sizing.
  w->finalized.resize(cap);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time batch buffer sizing.
  w->epochs.resize(cap);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time batch buffer sizing.
  w->degraded.resize(cap);
  w->active_slots = std::vector<std::atomic<std::int64_t>>(cap);
  if (sup_) {
    w->params = w->model->parameters();
    nn::Sequential& net = w->model->net();
    for (std::size_t i = 0; i < net.size(); ++i)
      if (auto* lif = dynamic_cast<snn::LifLayer*>(&net.layer(i)))
        // NOLINTNEXTLINE(snnsec-hot-alloc): startup/respawn-time construction.
        w->lifs.push_back(lif);
    w->canary_runner = std::make_unique<snn::AnytimeRunner>(*w->model);
    // Prewarm and boot-verify: the deep canary's stage buffers must be warm
    // before steady state (zero-alloc gate), and a replica that cannot
    // reproduce the golden logits should fail loudly at startup.
    w->canary_runner->run(sup_->probe());
    SNNSEC_CHECK(sup_->logits_ok(w->canary_runner->logits()),
                 "serve: replica " << id << " failed its boot canary");
    w->last_canary_ms.store(now_ms(), std::memory_order_relaxed);
  }
  return w;
}

void Server::start_workers(std::int64_t requested) {
  util::ThreadPool& pool = util::ThreadPool::global();
  // Keep at least one pool thread free: a resident worker parks in
  // next_batch, and a pool whose every thread is parked would starve other
  // parallel_for users.
  const std::int64_t available =
      pool.size() > 1 ? static_cast<std::int64_t>(pool.size()) - 1 : 0;
  num_workers_ = std::min(requested, available);
  if (requested > 0 && num_workers_ == 0) {
    SNNSEC_LOG_WARN("serve: thread pool too small for "
                    << requested
                    << " resident workers; falling back to inline execution");
  }
  const std::int64_t contexts = std::max<std::int64_t>(num_workers_, 1);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time worker construction.
  workers_.reserve(static_cast<std::size_t>(contexts));
  for (std::int64_t i = 0; i < contexts; ++i) {
    // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time worker construction.
    workers_.push_back(make_worker_context(i));
  }
  {
    std::lock_guard<std::mutex> lk(join_m_);
    live_workers_ = num_workers_;
  }
  for (std::int64_t i = 0; i < num_workers_; ++i) {
    Worker* w = workers_[static_cast<std::size_t>(i)].get();
    pool.submit([this, w] { worker_loop(*w); });
  }
  if (num_workers_ > 0)
    SNNSEC_LOG_INFO("serve: " << num_workers_
                              << " resident workers on the global pool");
}

bool Server::infer(const Tensor& x, const RequestOptions& opt,
                   InferResult& out) {
  const nn::LenetSpec& arch = artifact_->arch();
  const bool shape_ok =
      (x.ndim() == 3 && x.dim(0) == arch.in_channels &&
       x.dim(1) == arch.image_size && x.dim(2) == arch.image_size) ||
      (x.ndim() == 4 && x.dim(0) == 1 && x.dim(1) == arch.in_channels &&
       x.dim(2) == arch.image_size && x.dim(3) == arch.image_size);
  SNNSEC_CHECK(shape_ok, "Server::infer: expected ["
                             << arch.in_channels << ", " << arch.image_size
                             << ", " << arch.image_size
                             << "] image (optionally with a leading batch-1 "
                                "dim), got "
                             << x.shape().to_string());
  SNNSEC_CHECK(opt.deadline_us >= 0 && opt.max_steps >= 0,
               "Server::infer: negative deadline_us/max_steps");

  // A NaN/Inf pixel would flow straight into the constant-current encoding
  // and poison every downstream membrane; reject it before admission.
  const float* px = x.data();
  const std::int64_t pixels = x.numel();
  bool finite_input = true;
  for (std::int64_t k = 0; k < pixels; ++k) {
    if (!std::isfinite(px[k])) {
      finite_input = false;
      break;
    }
  }
  if (!finite_input) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("serve.errors", 1);
    out.status = ResultStatus::kError;
    out.pred = -1;
    out.steps_used = 0;
    out.time_steps = time_steps();
    out.truncated = false;
    out.queue_us = 0;
    out.latency_us = 0;
    out.batch_size = 0;
    out.anomaly_score = -1.0;
    out.flagged = false;
    out.attempts = 0;
    out.degraded = false;
    out.error = "non-finite input pixel rejected before encoding";
    return false;
  }

  const std::int64_t slot_idx = batcher_.try_acquire();
  if (slot_idx < 0) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("serve.shed", 1);
    out.status = ResultStatus::kRejected;
    out.pred = -1;
    out.steps_used = 0;
    out.time_steps = time_steps();
    out.truncated = false;
    out.queue_us = 0;
    out.latency_us = 0;
    out.batch_size = 0;
    out.anomaly_score = -1.0;
    out.flagged = false;
    out.attempts = 0;
    out.degraded = false;
    out.error = batcher_.stopped() ? "server stopped" : "queue at capacity";
    return false;
  }

  submitted_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.requests", 1);
  Slot& s = *slots_[static_cast<std::size_t>(slot_idx)];
  // The slot is exclusively ours until enqueue() publishes it.
  std::copy(x.data(), x.data() + x.numel(), s.input.data());
  s.opt = opt;
  if (s.opt.deadline_us == 0) s.opt.deadline_us = cfg_.default_deadline_us;
  s.submitted = std::chrono::steady_clock::now();
  s.has_deadline = s.opt.deadline_us > 0;
  if (s.has_deadline)
    s.deadline = s.submitted + std::chrono::microseconds(s.opt.deadline_us);
  s.out = &out;
  // NOLINTNEXTLINE(snnsec-mixed-guard): slot exclusively ours until enqueue()
  s.done = false;
  s.attempts.store(0, std::memory_order_relaxed);
  {
    SNNSEC_TRACE_SCOPE_ID("serve.enqueue", slot_idx);
    batcher_.enqueue(slot_idx);
  }
  SNNSEC_GAUGE_SET("serve.queue_depth",
                   static_cast<double>(batcher_.depth()));

  if (num_workers_ == 0) {
    drive_inline(s);
  } else {
    std::unique_lock<std::mutex> lk(s.m);
    s.cv.wait(lk, [&s] { return s.done; });
  }
  batcher_.release(slot_idx);
  return out.status == ResultStatus::kOk;
}

void Server::drive_inline(Slot& own) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(own.m);
      if (own.done) return;
    }
    std::lock_guard<std::mutex> ex(inline_m_);
    {
      std::lock_guard<std::mutex> lk(own.m);
      if (own.done) return;
    }
    // Our slot is still pending and no other thread is executing (we hold
    // the execution lock), so next_batch is guaranteed to make progress.
    // With supervision, heal/canary first: a requeued request must not
    // land back on the quarantined replica it just escaped.
    Worker& w = *workers_.front();
    if (sup_) maintain(w);
    // NOLINTNEXTLINE(snnsec-lock-across-wait): inline_m_ serializes inline executors; wait bounded by flush deadline
    const std::int64_t n = batcher_.next_batch(w.slots.data());
    if (n > 0) execute_batch(w, n);
  }
}

void Server::worker_loop(Worker& w) {
  const bool supervised = sup_ != nullptr;
  // Supervised workers poll with a timeout so canaries and healing run
  // even when no traffic arrives.
  const std::int64_t tick_us = 20000;
  for (;;) {
    if (supervised && w.deposed.load(std::memory_order_acquire)) break;
    std::int64_t n;
    if (supervised) {
      n = batcher_.next_batch_for(w.slots.data(), tick_us);
      if (n == 0) break;  // stopped and drained
      if (n < 0) {        // idle tick: maintenance window
        maintain(w);
        continue;
      }
    } else {
      n = batcher_.next_batch(w.slots.data());
      if (n == 0) break;
    }
    execute_batch(w, n);
    if (supervised) maintain(w);
  }
  {
    std::lock_guard<std::mutex> lk(join_m_);
    --live_workers_;
  }
  join_cv_.notify_all();
}

// SNNSEC_HOT entry: per-batch inference drive, reached from every request.
void Server::execute_batch(Worker& w, std::int64_t n) {
  const auto exec_start = std::chrono::steady_clock::now();
  const std::int64_t batch_id =
      batches_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_TRACE_SCOPE_ID("serve.batch", batch_id);
  SNNSEC_COUNTER_ADD("serve.batches", 1);
  SNNSEC_HISTOGRAM_OBSERVE("serve.batch_size", static_cast<double>(n), 1, 2,
                           4, 8, 16, 32, 64);
  SNNSEC_GAUGE_SET("serve.queue_depth",
                   static_cast<double>(batcher_.depth()));

  if (sup_) {
    w.hb_ms.store(elapsed_us(start_, exec_start) / 1000,
                  std::memory_order_relaxed);
    w.current_batch.store(batch_id, std::memory_order_relaxed);
    w.busy.store(true, std::memory_order_release);
  }
  // Publish the batch's in-flight rows before anything that can stall —
  // including the chaos hook's simulated wedges: the watchdog can only
  // rescue slots it can see, and a real stall can land at any point after
  // the pop.
  for (std::int64_t i = 0; i < n; ++i) {
    Slot& s = *slots_[static_cast<std::size_t>(w.slots[
        static_cast<std::size_t>(i)])];
    w.finalized[static_cast<std::size_t>(i)] = 0;
    // Latch the retry epoch: we may deliver this row only while it still
    // matches (a requeue bumps it).
    w.epochs[static_cast<std::size_t>(i)] =
        s.epoch.load(std::memory_order_acquire);
    if (sup_) {
      s.attempts.fetch_add(1, std::memory_order_relaxed);
      w.active_slots[static_cast<std::size_t>(i)].store(
          w.slots[static_cast<std::size_t>(i)], std::memory_order_relaxed);
    }
  }
  if (sup_) w.active_n.store(n, std::memory_order_release);

  if (cfg_.chaos_on_batch) {
    ChaosContext ctx;
    ctx.replica_id = w.id;
    ctx.batch_id = batch_id;
    ctx.respawns = w.respawns.load(std::memory_order_relaxed);
    ctx.model = w.model.get();
    cfg_.chaos_on_batch(ctx);
  }

  const nn::LenetSpec& arch = artifact_->arch();
  const std::int64_t image = arch.in_channels * arch.image_size *
                             arch.image_size;
  const std::int64_t t_max = time_steps();
  // Overload governor: one step budget per batch, a pure function of queue
  // pressure — degrade toward the truncation-curve cliff before shedding.
  std::int64_t governed = t_max;
  if (sup_) {
    governed = std::max(
        sup_->governed_steps(batcher_.depth(), batcher_.capacity()),
        cfg_.min_steps);
    SNNSEC_GAUGE_SET("serve.health.governed_max_steps",
                     static_cast<double>(governed));
  }
  {
    SNNSEC_TRACE_SCOPE_ID("serve.batch.flush", batch_id);
    if (w.batch_input.ndim() != 4 || w.batch_input.dim(0) != n ||
        w.batch_input.dim(1) != arch.in_channels ||
        w.batch_input.dim(2) != arch.image_size ||
        w.batch_input.dim(3) != arch.image_size)
      w.batch_input = Tensor(
          Shape{n, arch.in_channels, arch.image_size, arch.image_size});
    for (std::int64_t i = 0; i < n; ++i) {
      Slot& s = *slots_[static_cast<std::size_t>(w.slots[
          static_cast<std::size_t>(i)])];
      std::copy(s.input.data(), s.input.data() + image,
                w.batch_input.data() + i * image);
      const std::int64_t user =
          s.opt.max_steps > 0 ? std::min(s.opt.max_steps, t_max) : t_max;
      w.budget[static_cast<std::size_t>(i)] = std::min(user, governed);
      w.degraded[static_cast<std::size_t>(i)] =
          w.budget[static_cast<std::size_t>(i)] < user ? 1 : 0;
    }
  }

  try {
    SNNSEC_TRACE_SCOPE_ID("serve.batch.forward", batch_id);
    w.runner->begin(w.batch_input);
    std::int64_t remaining = n;
    for (std::int64_t t = 1; t <= t_max && remaining > 0; ++t) {
      w.runner->step();
      const auto now = std::chrono::steady_clock::now();
      if (sup_)
        w.hb_ms.store(elapsed_us(start_, now) / 1000,
                      std::memory_order_relaxed);
      for (std::int64_t i = 0; i < n; ++i) {
        if (w.finalized[static_cast<std::size_t>(i)]) continue;
        Slot& s = *slots_[static_cast<std::size_t>(w.slots[
            static_cast<std::size_t>(i)])];
        const bool out_of_budget = t >= w.budget[static_cast<std::size_t>(i)];
        const bool past_deadline =
            s.has_deadline && t >= cfg_.min_steps && now >= s.deadline;
        if (out_of_budget || past_deadline) {
          SNNSEC_TRACE_SCOPE_ID("serve.batch.finalize", batch_id);
          finalize(s, w, i, t, n, exec_start);
          w.finalized[static_cast<std::size_t>(i)] = 1;
          --remaining;
        }
      }
    }
  } catch (const std::exception& e) {
    if (sup_) {
      // The replica is suspect; requeue the batch's unfinalized requests
      // so a healthy replica (or this one, post-heal) re-runs them.
      quarantine(w, "batch execution threw");
      for (std::int64_t i = 0; i < n; ++i) {
        if (w.finalized[static_cast<std::size_t>(i)]) continue;
        retry_slot(w.slots[static_cast<std::size_t>(i)],
                   w.epochs[static_cast<std::size_t>(i)], e.what(), n);
        w.finalized[static_cast<std::size_t>(i)] = 1;
      }
    } else {
      for (std::int64_t i = 0; i < n; ++i) {
        if (w.finalized[static_cast<std::size_t>(i)]) continue;
        Slot& s = *slots_[static_cast<std::size_t>(w.slots[
            static_cast<std::size_t>(i)])];
        deliver_error(s, e.what(), n,
                      w.epochs[static_cast<std::size_t>(i)]);
        w.finalized[static_cast<std::size_t>(i)] = 1;
      }
    }
  }
  if (sup_) {
    w.active_n.store(0, std::memory_order_release);
    w.busy.store(false, std::memory_order_release);
    last_batch_end_ms_.store(now_ms(), std::memory_order_relaxed);
  }
}

void Server::finalize(Slot& s, Worker& w, std::int64_t row,
                      std::int64_t steps, std::int64_t batch_size,
                      std::chrono::steady_clock::time_point exec_start) {
  const snn::AnytimeRunner& runner = *w.runner;
  const std::int64_t classes = num_classes();
  const float* logits = runner.logits().data() + row * classes;

  if (sup_) {
    // Non-finite logits (NaN storm, exponent-bit weight flip) never reach a
    // caller under supervision: quarantine the replica and retry the
    // request elsewhere. Unsupervised servers deliver them unchanged — the
    // chaos bench's supervision-off arm measures exactly that damage.
    bool finite = true;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (!std::isfinite(logits[c])) {
        finite = false;
        break;
      }
    }
    if (!finite) {
      sup_->note_nonfinite();
      quarantine(w, "non-finite logits");
      retry_slot(w.slots[static_cast<std::size_t>(row)],
                 w.epochs[static_cast<std::size_t>(row)],
                 "non-finite logits", batch_size);
      return;
    }
  }

  double anomaly = -1.0;
  bool flagged = false;
  if (envelope_) {
    // Freeze this request's activity summary at its truncation depth and
    // score it against the clean bands — both allocation-free after the
    // first response through this worker.
    w.sketch.finalize(row, w.sketch_out);
    anomaly = envelope_->score(w.sketch_out);
    flagged = anomaly >= cfg_.flag_threshold;
  }

  const auto now = std::chrono::steady_clock::now();
  bool delivered = false;
  bool was_truncated = false;
  bool was_degraded = false;
  {
    // NOLINTNEXTLINE(snnsec-hot-path-lock): per-slot delivery lock, uncontended per request
    std::lock_guard<std::mutex> lk(s.m);
    const bool stale =
        s.done || s.epoch.load(std::memory_order_relaxed) !=
                      w.epochs[static_cast<std::size_t>(row)];
    if (!stale) {
      InferResult& r = *s.out;
      // Caller-owned result buffer: grows only on the first response
      // written into this InferResult object, then stays put across reuse.
      if (static_cast<std::int64_t>(r.scores.size()) != classes)
        // NOLINTNEXTLINE(snnsec-hot-alloc): first-response-only growth
        r.scores.resize(static_cast<std::size_t>(classes));
      std::int64_t best = 0;
      for (std::int64_t c = 0; c < classes; ++c) {
        r.scores[static_cast<std::size_t>(c)] = logits[c];
        if (logits[c] > logits[best]) best = c;
      }
      r.status = ResultStatus::kOk;
      r.pred = best;
      r.steps_used = steps;
      r.time_steps = runner.time_steps();
      r.truncated = steps < runner.time_steps();
      r.batch_size = batch_size;
      r.queue_us = elapsed_us(s.submitted, exec_start);
      r.latency_us = elapsed_us(s.submitted, now);
      r.anomaly_score = anomaly;
      r.flagged = flagged;
      r.attempts = std::max<std::int64_t>(
          1, s.attempts.load(std::memory_order_relaxed));
      r.degraded = w.degraded[static_cast<std::size_t>(row)] != 0;
      r.error.clear();
      if (flagged && cfg_.detect_policy == DetectPolicy::kReject)
        r.status = ResultStatus::kFlagged;
      was_truncated = r.truncated;
      was_degraded = r.degraded;
      s.done = true;
      delivered = true;
    }
  }
  if (!delivered) return;  // a retry/rescue owns this request now
  s.cv.notify_one();

  if (envelope_) {
    SNNSEC_HISTOGRAM_OBSERVE("serve.detect.score", anomaly, 0.5, 1, 2, 4, 8,
                             16, 32, 64);
    SNNSEC_GAUGE_SET(
        "serve.detect.calibration_age_s",
        detect_age_base_s_ +
            static_cast<double>(elapsed_us(start_, now)) * 1e-6);
    if (flagged) {
      // NOLINTNEXTLINE(snnsec-relaxed-atomic): pure event counter, only aggregated
      flagged_.fetch_add(1, std::memory_order_relaxed);
      SNNSEC_COUNTER_ADD("serve.detect.flagged", 1);
      if (cfg_.detect_policy == DetectPolicy::kReject)
        SNNSEC_COUNTER_ADD("serve.detect.rejected", 1);
    }
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.completed", 1);
  if (was_truncated) {
    truncated_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("serve.truncated", 1);
  }
  if (was_degraded && sup_) sup_->note_degraded();
  SNNSEC_HISTOGRAM_OBSERVE("serve.latency_us",
                           static_cast<double>(elapsed_us(s.submitted, now)),
                           100, 300, 1000, 3000, 10000, 30000, 100000,
                           300000, 1000000);
}

void Server::deliver_error(Slot& s, const char* what,
                           std::int64_t batch_size,
                           std::int64_t latched_epoch) {
  const auto now = std::chrono::steady_clock::now();
  bool delivered = false;
  {
    // NOLINTNEXTLINE(snnsec-hot-path-lock): per-slot delivery lock, error path only
    std::lock_guard<std::mutex> lk(s.m);
    const bool stale =
        s.done || (latched_epoch >= 0 &&
                   s.epoch.load(std::memory_order_relaxed) != latched_epoch);
    if (!stale) {
      InferResult& r = *s.out;
      r.status = ResultStatus::kError;
      r.pred = -1;
      r.steps_used = 0;
      r.time_steps = time_steps();
      r.truncated = false;
      r.batch_size = batch_size;
      r.queue_us = 0;
      r.latency_us = elapsed_us(s.submitted, now);
      r.anomaly_score = -1.0;
      r.flagged = false;
      r.attempts = std::max<std::int64_t>(
          1, s.attempts.load(std::memory_order_relaxed));
      r.degraded = false;
      r.error = what;
      s.done = true;
      delivered = true;
    }
  }
  if (!delivered) return;
  errors_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.errors", 1);
  s.cv.notify_one();
}

void Server::retry_slot(std::int64_t slot_idx, std::int64_t latched_epoch,
                        const char* why, std::int64_t batch_size) {
  Slot& s = *slots_[static_cast<std::size_t>(slot_idx)];
  bool requeued = false;
  bool exhausted = false;
  {
    // NOLINTNEXTLINE(snnsec-hot-path-lock): per-slot retry lock, canary path only
    std::lock_guard<std::mutex> lk(s.m);
    if (s.done) return;
    const std::int64_t cur = s.epoch.load(std::memory_order_relaxed);
    if (latched_epoch >= 0 && cur != latched_epoch) return;
    if (s.attempts.load(std::memory_order_relaxed) >= sup_->max_attempts()) {
      const auto now = std::chrono::steady_clock::now();
      InferResult& r = *s.out;
      r.status = ResultStatus::kError;
      r.pred = -1;
      r.steps_used = 0;
      r.time_steps = time_steps();
      r.truncated = false;
      r.batch_size = batch_size;
      r.queue_us = 0;
      r.latency_us = elapsed_us(s.submitted, now);
      r.anomaly_score = -1.0;
      r.flagged = false;
      r.attempts = s.attempts.load(std::memory_order_relaxed);
      r.degraded = false;
      r.error = why;
      s.done = true;
      exhausted = true;
    } else {
      // Bump the epoch first: any stale executor's delivery becomes a
      // no-op before the request re-enters the queue.
      s.epoch.store(cur + 1, std::memory_order_release);
      requeued = true;
    }
  }
  if (exhausted) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("serve.errors", 1);
    s.cv.notify_one();
    return;
  }
  if (requeued) {
    sup_->note_retry();
    // enqueue admits even after stop(): a draining server still owes every
    // admitted request an answer.
    batcher_.enqueue(slot_idx);
  }
}

void Server::quarantine(Worker& w, const char* reason) {
  ReplicaState expected = ReplicaState::kHealthy;
  if (w.state.compare_exchange_strong(expected, ReplicaState::kQuarantined)) {
    sup_->note_canary_failure(reason);
    sup_->note_quarantine();
    SNNSEC_LOG_WARN("serve: replica " << w.id << " quarantined: " << reason);
  }
}

void Server::maintain(Worker& w) {
  if (w.deposed.load(std::memory_order_acquire) ||
      w.supervision_disabled.load(std::memory_order_relaxed))
    return;
  if (w.state.load(std::memory_order_acquire) == ReplicaState::kQuarantined) {
    heal(w);
    return;
  }
  const SupervisorConfig& sc = cfg_.supervisor;
  if (sc.fast_canary_every > 0 &&
      ++w.batches_since_canary >= sc.fast_canary_every) {
    w.batches_since_canary = 0;
    fast_canary(w);
  }
  // Deep canary only in real idle windows (empty queue AND a batch-free
  // grace period): a probe inference mid-traffic would show up directly in
  // tail latency, and the per-batch fast canary already carries detection
  // under load.
  const std::int64_t now = now_ms();
  if (sc.canary_interval_ms > 0 && batcher_.depth() == 0 &&
      now - last_batch_end_ms_.load(std::memory_order_relaxed) >=
          kDeepCanaryIdleGraceMs &&
      now - w.last_canary_ms.load(std::memory_order_relaxed) >=
          sc.canary_interval_ms)
    deep_canary(w);
  if (w.state.load(std::memory_order_acquire) == ReplicaState::kQuarantined)
    heal(w);
}

void Server::fast_canary(Worker& w) {
  sup_->note_fast_canary();
  for (snn::LifLayer* lif : w.lifs) {
    if (lif->spike_fault().any()) {
      quarantine(w, "armed spike fault detected on replica");
      return;
    }
  }
  if (Supervisor::weights_digest(w.params) != sup_->golden_weights_digest())
    quarantine(w, "weights digest diverged from golden");
}

void Server::deep_canary(Worker& w) {
  sup_->note_deep_canary();
  SNNSEC_TRACE_SCOPE_ID("serve.canary", w.id);
  try {
    w.canary_runner->run(sup_->probe());
    if (!sup_->logits_ok(w.canary_runner->logits()))
      quarantine(w, "canary logits diverged from golden");
  } catch (const std::exception&) {
    // e.g. an armed spike fault the fast tier has not scanned yet: the
    // canary runner refuses faulted models by design.
    quarantine(w, "canary inference threw");
  }
  w.last_canary_ms.store(now_ms(), std::memory_order_relaxed);
}

void Server::heal(Worker& w) {
  const SupervisorConfig& sc = cfg_.supervisor;
  if (w.respawns.load(std::memory_order_relaxed) >= sc.max_respawns) {
    if (num_workers_ == 0) {
      // The inline context is the only executor; keep serving unsupervised
      // rather than wedging every client.
      w.supervision_disabled.store(true, std::memory_order_relaxed);
      w.state.store(ReplicaState::kHealthy);
      SNNSEC_LOG_WARN(
          "serve: inline replica exhausted its respawn budget; supervision "
          "disabled");
    } else {
      w.deposed.store(true, std::memory_order_release);
      w.state.store(ReplicaState::kDeposed);
      SNNSEC_LOG_WARN("serve: worker " << w.id
                                       << " exhausted its respawn budget; "
                                          "deposed");
    }
    return;
  }
  SNNSEC_TRACE_SCOPE_ID("serve.respawn", w.id);
  // Respawn path, not steady state: stamping a fresh replica allocates.
  w.model = artifact_->make_replica();
  w.params = w.model->parameters();
  w.lifs.clear();
  nn::Sequential& net = w.model->net();
  for (std::size_t i = 0; i < net.size(); ++i)
    if (auto* lif = dynamic_cast<snn::LifLayer*>(&net.layer(i)))
      // NOLINTNEXTLINE(snnsec-hot-alloc): respawn path, not steady state.
      w.lifs.push_back(lif);
  w.runner = std::make_unique<snn::AnytimeRunner>(*w.model,
                                                  cfg_.allow_faults);
  if (envelope_) w.runner->set_sketch(&w.sketch);
  w.canary_runner = std::make_unique<snn::AnytimeRunner>(*w.model);
  w.respawns.fetch_add(1, std::memory_order_relaxed);
  sup_->note_respawn();
  // Boot-verify the fresh replica before returning it to duty.
  w.canary_runner->run(sup_->probe());
  const bool verified = sup_->logits_ok(w.canary_runner->logits());
  w.last_canary_ms.store(now_ms(), std::memory_order_relaxed);
  w.state.store(ReplicaState::kHealthy);
  if (verified) {
    SNNSEC_LOG_INFO("serve: replica "
                    << w.id << " respawned from artifact (respawn "
                    << w.respawns.load(std::memory_order_relaxed) << "/"
                    << sc.max_respawns << ")");
  } else {
    // A pristine replica failing its boot canary means the golden state
    // itself is suspect; serve rather than heal-loop (the next canary
    // re-checks, bounded by the respawn budget).
    SNNSEC_LOG_WARN("serve: replica " << w.id
                                      << " respawned but failed its boot "
                                         "canary; serving anyway");
  }
}

void Server::supervise_loop() {
  const SupervisorConfig& sc = cfg_.supervisor;
  for (;;) {
    // Small sleep slices so stop() joins promptly.
    for (int i = 0; i < 5; ++i) {
      if (sup_stop_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::int64_t now = now_ms();
    if (num_workers_ == 0) {
      Worker& w = *workers_.front();
      if (w.supervision_disabled.load(std::memory_order_relaxed)) continue;
      if (sc.heartbeat_timeout_ms > 0 &&
          w.busy.load(std::memory_order_acquire)) {
        const std::int64_t hb = w.hb_ms.load(std::memory_order_relaxed);
        const std::int64_t cur =
            w.current_batch.load(std::memory_order_relaxed);
        if (now - hb > sc.heartbeat_timeout_ms &&
            cur != w.last_trip_batch) {
          // Inline mode cannot depose the driving client thread; record
          // the trip and quarantine so the post-batch maintain() heals.
          w.last_trip_batch = cur;
          sup_->note_watchdog_trip();
          quarantine(w, "heartbeat missed (stalled inline batch)");
        }
      }
      // Deep canary / heal only when the server looks idle (see maintain);
      // a client blocked behind the probe would pay for it in tail latency.
      if (sc.canary_interval_ms > 0 &&
          !w.busy.load(std::memory_order_acquire) && batcher_.depth() == 0 &&
          now - last_batch_end_ms_.load(std::memory_order_relaxed) >=
              kDeepCanaryIdleGraceMs &&
          now - w.last_canary_ms.load(std::memory_order_relaxed) >=
              sc.canary_interval_ms) {
        // try_lock: never block the supervisor behind a wedged batch.
        std::unique_lock<std::mutex> lk(inline_m_, std::try_to_lock);
        if (lk.owns_lock()) {
          if (w.state.load(std::memory_order_acquire) ==
              ReplicaState::kQuarantined) {
            heal(w);
          } else {
            deep_canary(w);
            if (w.state.load(std::memory_order_acquire) ==
                ReplicaState::kQuarantined)
              heal(w);
          }
        }
      }
    } else {
      if (sc.heartbeat_timeout_ms <= 0) continue;
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        Worker& w = *workers_[i];
        if (w.deposed.load(std::memory_order_acquire)) continue;
        if (!w.busy.load(std::memory_order_acquire)) continue;
        const std::int64_t hb = w.hb_ms.load(std::memory_order_relaxed);
        if (now - hb > sc.heartbeat_timeout_ms) depose_and_respawn(w, now);
      }
    }
  }
}

void Server::depose_and_respawn(Worker& w, std::int64_t now) {
  sup_->note_watchdog_trip();
  sup_->note_canary_failure("heartbeat missed");
  sup_->note_quarantine();
  w.state.store(ReplicaState::kDeposed);
  w.deposed.store(true, std::memory_order_release);
  SNNSEC_LOG_WARN("serve: worker "
                  << w.id << " missed its heartbeat ("
                  << now - w.hb_ms.load(std::memory_order_relaxed)
                  << " ms); deposing and rescuing its batch");
  // Rescue the wedged batch: every row the worker has not delivered is
  // re-enqueued (or failed, if out of attempts). Slot epochs make the
  // deposed worker's eventual late deliveries no-ops.
  SNNSEC_TRACE_SCOPE_ID("serve.rescue", w.id);
  const std::int64_t nact = w.active_n.load(std::memory_order_acquire);
  for (std::int64_t i = 0; i < nact; ++i) {
    const std::int64_t slot_idx =
        w.active_slots[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    sup_->note_rescue();
    retry_slot(slot_idx, -1, "worker deposed by watchdog", nact);
  }
  // Replacement replica, subject to the fleet-wide respawn budget.
  if (sup_->stats().respawns >= cfg_.supervisor.max_respawns) {
    SNNSEC_LOG_WARN("serve: respawn budget exhausted; no replacement for "
                    "worker "
                    << w.id);
    return;
  }
  SNNSEC_TRACE_SCOPE_ID("serve.respawn", static_cast<std::int64_t>(
                                             workers_.size()));
  // NOLINTNEXTLINE(snnsec-hot-alloc): respawn path, not steady state.
  workers_.push_back(make_worker_context(
      static_cast<std::int64_t>(workers_.size())));
  Worker* fresh = workers_.back().get();
  {
    std::lock_guard<std::mutex> lk(join_m_);
    ++live_workers_;
  }
  sup_->note_respawn();
  util::ThreadPool::global().submit([this, fresh] { worker_loop(*fresh); });
  SNNSEC_LOG_INFO("serve: replacement worker " << fresh->id << " spawned");
}

void Server::stop() {
  stopping_.store(true);
  if (sup_thread_.joinable()) {
    sup_stop_.store(true, std::memory_order_release);
    sup_thread_.join();
  }
  batcher_.stop();
  std::unique_lock<std::mutex> lk(join_m_);
  join_cv_.wait(lk, [this] { return live_workers_ == 0; });
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.truncated = truncated_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  // NOLINTNEXTLINE(snnsec-relaxed-atomic): advisory counter snapshot, no ordering
  s.flagged = flagged_.load(std::memory_order_relaxed);
  if (sup_) {
    const SupervisorStats h = sup_->stats();
    s.canary_failures = h.canary_failures;
    s.quarantines = h.quarantines;
    s.respawns = h.respawns;
    s.watchdog_trips = h.watchdog_trips;
    s.retries = h.retries;
    s.rescues = h.rescues;
    s.degraded = h.degraded;
  }
  return s;
}

std::int64_t Server::time_steps() const {
  return artifact_->config().time_steps;
}

std::int64_t Server::num_classes() const {
  return artifact_->arch().num_classes;
}

const char* to_string(ResultStatus status) {
  switch (status) {
    case ResultStatus::kOk:
      return "ok";
    case ResultStatus::kRejected:
      return "rejected";
    case ResultStatus::kError:
      return "error";
    case ResultStatus::kFlagged:
      return "flagged";
  }
  return "unknown";
}

const char* to_string(DetectPolicy policy) {
  switch (policy) {
    case DetectPolicy::kObserve:
      return "observe";
    case DetectPolicy::kReject:
      return "reject";
    case DetectPolicy::kReroute:
      return "reroute";
  }
  return "unknown";
}

}  // namespace snnsec::serve
