// SNNSEC_HOT: per-request serving path — steady state must not allocate.
#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checked.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace snnsec::serve {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::int64_t elapsed_us(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

Server::Server(ServerConfig cfg)
    : Server(std::move(cfg), nullptr) {}

Server::Server(ServerConfig cfg,
               std::shared_ptr<const ModelCache::Artifact> model)
    : cfg_(std::move(cfg)),
      artifact_(model ? std::move(model)
                      : ModelCache::global().acquire(cfg_.model_path)),
      start_(std::chrono::steady_clock::now()),
      batcher_(cfg_.batcher) {
  const std::int64_t t = artifact_->config().time_steps;
  cfg_.min_steps = std::clamp<std::int64_t>(cfg_.min_steps, 1, t);
  SNNSEC_CHECK(cfg_.default_deadline_us >= 0,
               "ServerConfig: default_deadline_us must be >= 0");

  if (cfg_.envelope) {
    envelope_ = cfg_.envelope;
  } else if (!cfg_.envelope_path.empty()) {
    // try_load validates magic/digest/version and requires the envelope's
    // config_hash to match the served model; on any failure the server
    // comes up without a detector instead of refusing to start.
    auto loaded = obs::ActivityEnvelope::try_load(cfg_.envelope_path,
                                                  artifact_->config_hash());
    if (loaded)
      envelope_ = std::make_shared<const obs::ActivityEnvelope>(
          std::move(*loaded));
    else
      SNNSEC_LOG_WARN("serve: envelope '" << cfg_.envelope_path
                                          << "' unusable; online detection "
                                             "disabled");
  }
  if (envelope_) {
    SNNSEC_CHECK(envelope_->ready(),
                 "ServerConfig: injected envelope is not fitted");
    // Wall clock touched once, here: the staleness gauge then advances on
    // the steady clock the hot path already reads.
    const auto now_unix_s =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    detect_age_base_s_ = static_cast<double>(
        now_unix_s - envelope_->created_unix_s());
    SNNSEC_GAUGE_SET("serve.detect.calibration_age_s", detect_age_base_s_);
    SNNSEC_LOG_INFO("serve: online detection armed ("
                    << envelope_->summary() << ", policy="
                    << to_string(cfg_.detect_policy) << ", threshold="
                    << cfg_.flag_threshold << ")");
  }

  const nn::LenetSpec& arch = artifact_->arch();
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time slot/worker construction.
  slots_.reserve(static_cast<std::size_t>(batcher_.capacity()));
  for (std::int64_t i = 0; i < batcher_.capacity(); ++i) {
    auto slot = std::make_unique<Slot>();
    slot->input = Tensor(
        Shape{1, arch.in_channels, arch.image_size, arch.image_size});
    // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time slot construction.
    slots_.push_back(std::move(slot));
  }
  start_workers(cfg_.workers);
}

Server::~Server() { stop(); }

void Server::start_workers(std::int64_t requested) {
  util::ThreadPool& pool = util::ThreadPool::global();
  // Keep at least one pool thread free: a resident worker parks in
  // next_batch, and a pool whose every thread is parked would starve other
  // parallel_for users.
  const std::int64_t available =
      pool.size() > 1 ? static_cast<std::int64_t>(pool.size()) - 1 : 0;
  num_workers_ = std::min(requested, available);
  if (requested > 0 && num_workers_ == 0) {
    SNNSEC_LOG_WARN("serve: thread pool too small for "
                    << requested
                    << " resident workers; falling back to inline execution");
  }
  const std::int64_t contexts = std::max<std::int64_t>(num_workers_, 1);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time worker construction.
  workers_.reserve(static_cast<std::size_t>(contexts));
  for (std::int64_t i = 0; i < contexts; ++i) {
    auto w = std::make_unique<Worker>();
    w->model = artifact_->make_replica();
    w->runner = std::make_unique<snn::AnytimeRunner>(*w->model);
    if (envelope_) {
      SNNSEC_CHECK(envelope_->layers().size() ==
                       w->runner->sketch_layers().size(),
                   "serve: envelope calibrated for "
                       << envelope_->layers().size()
                       << " spiking layers, model has "
                       << w->runner->sketch_layers().size());
      w->sketch.configure(w->runner->sketch_layers(), envelope_->buckets());
      w->runner->set_sketch(&w->sketch);
    }
    const std::size_t cap = static_cast<std::size_t>(cfg_.batcher.max_batch);
    // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time batch buffer sizing.
    w->slots.resize(cap);
    // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time batch buffer sizing.
    w->budget.resize(cap);
    // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time batch buffer sizing.
    w->finalized.resize(cap);
    // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time worker construction.
    workers_.push_back(std::move(w));
  }
  live_workers_ = num_workers_;
  for (std::int64_t i = 0; i < num_workers_; ++i) {
    Worker* w = workers_[static_cast<std::size_t>(i)].get();
    pool.submit([this, w] { worker_loop(*w); });
  }
  if (num_workers_ > 0)
    SNNSEC_LOG_INFO("serve: " << num_workers_
                              << " resident workers on the global pool");
}

bool Server::infer(const Tensor& x, const RequestOptions& opt,
                   InferResult& out) {
  const nn::LenetSpec& arch = artifact_->arch();
  const bool shape_ok =
      (x.ndim() == 3 && x.dim(0) == arch.in_channels &&
       x.dim(1) == arch.image_size && x.dim(2) == arch.image_size) ||
      (x.ndim() == 4 && x.dim(0) == 1 && x.dim(1) == arch.in_channels &&
       x.dim(2) == arch.image_size && x.dim(3) == arch.image_size);
  SNNSEC_CHECK(shape_ok, "Server::infer: expected ["
                             << arch.in_channels << ", " << arch.image_size
                             << ", " << arch.image_size
                             << "] image (optionally with a leading batch-1 "
                                "dim), got "
                             << x.shape().to_string());
  SNNSEC_CHECK(opt.deadline_us >= 0 && opt.max_steps >= 0,
               "Server::infer: negative deadline_us/max_steps");

  const std::int64_t slot_idx = batcher_.try_acquire();
  if (slot_idx < 0) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("serve.shed", 1);
    out.status = ResultStatus::kRejected;
    out.pred = -1;
    out.steps_used = 0;
    out.time_steps = time_steps();
    out.truncated = false;
    out.queue_us = 0;
    out.latency_us = 0;
    out.batch_size = 0;
    out.anomaly_score = -1.0;
    out.flagged = false;
    out.error = batcher_.stopped() ? "server stopped" : "queue at capacity";
    return false;
  }

  submitted_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.requests", 1);
  Slot& s = *slots_[static_cast<std::size_t>(slot_idx)];
  // The slot is exclusively ours until enqueue() publishes it.
  std::copy(x.data(), x.data() + x.numel(), s.input.data());
  s.opt = opt;
  if (s.opt.deadline_us == 0) s.opt.deadline_us = cfg_.default_deadline_us;
  s.submitted = std::chrono::steady_clock::now();
  s.has_deadline = s.opt.deadline_us > 0;
  if (s.has_deadline)
    s.deadline = s.submitted + std::chrono::microseconds(s.opt.deadline_us);
  s.out = &out;
  s.done = false;
  {
    SNNSEC_TRACE_SCOPE_ID("serve.enqueue", slot_idx);
    batcher_.enqueue(slot_idx);
  }
  SNNSEC_GAUGE_SET("serve.queue_depth",
                   static_cast<double>(batcher_.depth()));

  if (num_workers_ == 0) {
    drive_inline(s);
  } else {
    std::unique_lock<std::mutex> lk(s.m);
    s.cv.wait(lk, [&s] { return s.done; });
  }
  batcher_.release(slot_idx);
  return out.status == ResultStatus::kOk;
}

void Server::drive_inline(Slot& own) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(own.m);
      if (own.done) return;
    }
    std::lock_guard<std::mutex> ex(inline_m_);
    {
      std::lock_guard<std::mutex> lk(own.m);
      if (own.done) return;
    }
    // Our slot is still pending and no other thread is executing (we hold
    // the execution lock), so next_batch is guaranteed to make progress.
    Worker& w = *workers_.front();
    const std::int64_t n = batcher_.next_batch(w.slots.data());
    if (n > 0) execute_batch(w, n);
  }
}

void Server::worker_loop(Worker& w) {
  for (;;) {
    const std::int64_t n = batcher_.next_batch(w.slots.data());
    if (n == 0) break;  // stopped and drained
    execute_batch(w, n);
  }
  {
    std::lock_guard<std::mutex> lk(join_m_);
    --live_workers_;
  }
  join_cv_.notify_all();
}

void Server::execute_batch(Worker& w, std::int64_t n) {
  const auto exec_start = std::chrono::steady_clock::now();
  const std::int64_t batch_id =
      batches_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_TRACE_SCOPE_ID("serve.batch", batch_id);
  SNNSEC_COUNTER_ADD("serve.batches", 1);
  SNNSEC_HISTOGRAM_OBSERVE("serve.batch_size", static_cast<double>(n), 1, 2,
                           4, 8, 16, 32, 64);
  SNNSEC_GAUGE_SET("serve.queue_depth",
                   static_cast<double>(batcher_.depth()));

  const nn::LenetSpec& arch = artifact_->arch();
  const std::int64_t image = arch.in_channels * arch.image_size *
                             arch.image_size;
  const std::int64_t t_max = time_steps();
  {
    SNNSEC_TRACE_SCOPE_ID("serve.batch.flush", batch_id);
    if (w.batch_input.ndim() != 4 || w.batch_input.dim(0) != n ||
        w.batch_input.dim(1) != arch.in_channels ||
        w.batch_input.dim(2) != arch.image_size ||
        w.batch_input.dim(3) != arch.image_size)
      w.batch_input = Tensor(
          Shape{n, arch.in_channels, arch.image_size, arch.image_size});
    for (std::int64_t i = 0; i < n; ++i) {
      const Slot& s = *slots_[static_cast<std::size_t>(w.slots[
          static_cast<std::size_t>(i)])];
      std::copy(s.input.data(), s.input.data() + image,
                w.batch_input.data() + i * image);
      w.budget[static_cast<std::size_t>(i)] =
          s.opt.max_steps > 0 ? std::min(s.opt.max_steps, t_max) : t_max;
      w.finalized[static_cast<std::size_t>(i)] = 0;
    }
  }

  try {
    SNNSEC_TRACE_SCOPE_ID("serve.batch.forward", batch_id);
    w.runner->begin(w.batch_input);
    std::int64_t remaining = n;
    for (std::int64_t t = 1; t <= t_max && remaining > 0; ++t) {
      w.runner->step();
      const auto now = std::chrono::steady_clock::now();
      for (std::int64_t i = 0; i < n; ++i) {
        if (w.finalized[static_cast<std::size_t>(i)]) continue;
        Slot& s = *slots_[static_cast<std::size_t>(w.slots[
            static_cast<std::size_t>(i)])];
        const bool out_of_budget = t >= w.budget[static_cast<std::size_t>(i)];
        const bool past_deadline =
            s.has_deadline && t >= cfg_.min_steps && now >= s.deadline;
        if (out_of_budget || past_deadline) {
          SNNSEC_TRACE_SCOPE_ID("serve.batch.finalize", batch_id);
          finalize(s, w, i, t, n, exec_start);
          w.finalized[static_cast<std::size_t>(i)] = 1;
          --remaining;
        }
      }
    }
  } catch (const std::exception& e) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (w.finalized[static_cast<std::size_t>(i)]) continue;
      Slot& s = *slots_[static_cast<std::size_t>(w.slots[
          static_cast<std::size_t>(i)])];
      deliver_error(s, e.what(), n);
      w.finalized[static_cast<std::size_t>(i)] = 1;
    }
  }
}

void Server::finalize(Slot& s, Worker& w, std::int64_t row,
                      std::int64_t steps, std::int64_t batch_size,
                      std::chrono::steady_clock::time_point exec_start) {
  const snn::AnytimeRunner& runner = *w.runner;
  InferResult& r = *s.out;
  const std::int64_t classes = num_classes();
  // Caller-owned result buffer: grows only on the first response written
  // into this InferResult object, then stays put across reuse.
  if (static_cast<std::int64_t>(r.scores.size()) != classes)
    // NOLINTNEXTLINE(snnsec-hot-alloc): first-response-only buffer growth
    r.scores.resize(static_cast<std::size_t>(classes));
  const float* logits = runner.logits().data() + row * classes;
  std::int64_t best = 0;
  for (std::int64_t c = 0; c < classes; ++c) {
    r.scores[static_cast<std::size_t>(c)] = logits[c];
    if (logits[c] > logits[best]) best = c;
  }
  r.status = ResultStatus::kOk;
  r.pred = best;
  r.steps_used = steps;
  r.time_steps = runner.time_steps();
  r.truncated = steps < runner.time_steps();
  r.batch_size = batch_size;
  const auto now = std::chrono::steady_clock::now();
  r.queue_us = elapsed_us(s.submitted, exec_start);
  r.latency_us = elapsed_us(s.submitted, now);
  r.anomaly_score = -1.0;
  r.flagged = false;
  r.error.clear();

  if (envelope_) {
    // Freeze this request's activity summary at its truncation depth and
    // score it against the clean bands — both allocation-free after the
    // first response through this worker.
    w.sketch.finalize(row, w.sketch_out);
    r.anomaly_score = envelope_->score(w.sketch_out);
    r.flagged = r.anomaly_score >= cfg_.flag_threshold;
    SNNSEC_HISTOGRAM_OBSERVE("serve.detect.score", r.anomaly_score, 0.5, 1,
                             2, 4, 8, 16, 32, 64);
    SNNSEC_GAUGE_SET(
        "serve.detect.calibration_age_s",
        detect_age_base_s_ +
            static_cast<double>(elapsed_us(start_, now)) * 1e-6);
    if (r.flagged) {
      flagged_.fetch_add(1, std::memory_order_relaxed);
      SNNSEC_COUNTER_ADD("serve.detect.flagged", 1);
      if (cfg_.detect_policy == DetectPolicy::kReject) {
        r.status = ResultStatus::kFlagged;
        SNNSEC_COUNTER_ADD("serve.detect.rejected", 1);
      }
    }
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.completed", 1);
  if (r.truncated) {
    truncated_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("serve.truncated", 1);
  }
  SNNSEC_HISTOGRAM_OBSERVE("serve.latency_us",
                           static_cast<double>(r.latency_us), 100, 300, 1000,
                           3000, 10000, 30000, 100000, 300000, 1000000);
  {
    std::lock_guard<std::mutex> lk(s.m);
    s.done = true;
  }
  s.cv.notify_one();
}

void Server::deliver_error(Slot& s, const char* what,
                           std::int64_t batch_size) {
  InferResult& r = *s.out;
  r.status = ResultStatus::kError;
  r.pred = -1;
  r.steps_used = 0;
  r.time_steps = time_steps();
  r.truncated = false;
  r.batch_size = batch_size;
  const auto now = std::chrono::steady_clock::now();
  r.queue_us = 0;
  r.latency_us = elapsed_us(s.submitted, now);
  r.anomaly_score = -1.0;
  r.flagged = false;
  r.error = what;
  errors_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.errors", 1);
  {
    std::lock_guard<std::mutex> lk(s.m);
    s.done = true;
  }
  s.cv.notify_one();
}

void Server::stop() {
  stopping_.store(true);
  batcher_.stop();
  std::unique_lock<std::mutex> lk(join_m_);
  join_cv_.wait(lk, [this] { return live_workers_ == 0; });
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.truncated = truncated_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.flagged = flagged_.load(std::memory_order_relaxed);
  return s;
}

std::int64_t Server::time_steps() const {
  return artifact_->config().time_steps;
}

std::int64_t Server::num_classes() const {
  return artifact_->arch().num_classes;
}

const char* to_string(ResultStatus status) {
  switch (status) {
    case ResultStatus::kOk:
      return "ok";
    case ResultStatus::kRejected:
      return "rejected";
    case ResultStatus::kError:
      return "error";
    case ResultStatus::kFlagged:
      return "flagged";
  }
  return "unknown";
}

const char* to_string(DetectPolicy policy) {
  switch (policy) {
    case DetectPolicy::kObserve:
      return "observe";
    case DetectPolicy::kReject:
      return "reject";
  }
  return "unknown";
}

}  // namespace snnsec::serve
