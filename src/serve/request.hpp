// Request/result types for the serving runtime.
//
// A request is one image plus scheduling options; the result reports the
// prediction together with how it was produced — how many of the model's T
// time steps actually ran (the anytime-truncation depth), how long the
// request queued, and the batch it rode in. Result objects are written
// in place and their score buffers are reused across calls, so a caller
// polling in a loop allocates nothing after the first response.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snnsec::serve {

enum class ResultStatus : std::uint8_t {
  kOk,        ///< prediction produced (possibly truncated)
  kRejected,  ///< shed by admission control — queue at capacity or stopped
  kError,     ///< execution failed; InferResult::error holds the reason
  kFlagged,   ///< anomaly detector fired under the reject policy; the
              ///< prediction fields are still populated for forensics
};

const char* to_string(ResultStatus status);

struct RequestOptions {
  /// Wall-clock budget measured from submission. Once it expires the
  /// request finalizes at the next completed time step (never before the
  /// server's min_steps). 0 = no deadline.
  std::int64_t deadline_us = 0;
  /// Hard cap on time steps (anytime truncation by depth rather than wall
  /// clock). 0 = the model's full window T.
  std::int64_t max_steps = 0;
};

struct InferResult {
  ResultStatus status = ResultStatus::kError;
  std::int64_t pred = -1;        ///< argmax class (ties -> lowest index)
  std::vector<float> scores;     ///< per-class logits, reused across calls
  std::int64_t steps_used = 0;   ///< time steps that actually ran
  std::int64_t time_steps = 0;   ///< the model's full window T
  bool truncated = false;        ///< steps_used < time_steps
  std::int64_t queue_us = 0;     ///< submission -> batch execution start
  std::int64_t latency_us = 0;   ///< submission -> result delivery
  std::int64_t batch_size = 0;   ///< size of the micro-batch it rode in
  /// RMS z-score of this request's spike activity against the clean
  /// envelope; -1 when the server runs without a detector.
  double anomaly_score = -1.0;
  /// anomaly_score >= the server's flag threshold. Set under both
  /// policies; under kReject the status is additionally kFlagged.
  bool flagged = false;
  /// Executions this request consumed. 1 on the healthy path; >1 when the
  /// supervisor re-ran it after its replica was quarantined mid-flight.
  std::int64_t attempts = 1;
  /// The overload governor capped this request's step budget below what it
  /// asked for (graceful degradation instead of shedding).
  bool degraded = false;
  std::string error;             ///< populated when status == kError
};

}  // namespace snnsec::serve
