// Supervisor: the health-check policy behind serve::Server's self-healing
// runtime. The Server owns the replicas and threads; this class owns the
// *judgments* — what "healthy" means, when to degrade, and the monotonic
// serve.health.* counters — so every decision is a pure, testable function
// of observed state.
//
// Two canary tiers, both compared against golden state derived from the
// pristine ModelCache artifact at construction:
//
//   fast canary (every `fast_canary_every` batches, on the replica's own
//     serving thread): an FNV-1a digest over every parameter float vs the
//     golden digest — catching weight bit-flips and NaN storms in one cache
//     sweep (~microseconds) — plus a scan for armed LifLayer spike faults.
//     Cheap enough to run per batch, so detection latency is ~one batch.
//
//   deep canary (every `canary_interval_ms`): run the pinned probe batch
//     through the replica's own AnytimeRunner and compare logits against
//     the golden logits elementwise (NaN-safe: a non-finite logit always
//     fails). The probe is derived deterministically from the checkpoint's
//     config hash — the same structural fingerprint the checkpoint's
//     architecture_fingerprint validation chain is built on — so every
//     server supervising a given checkpoint shares one probe/golden pair.
//
// A replica that fails either canary is quarantined and respawned in place
// from the artifact payload; requests it had in flight are re-run on a
// healthy replica under the bounded util::RetryPolicy. The overload
// governor trades accuracy for headroom before the batcher sheds: as queue
// depth climbs between the low and high watermarks, the per-batch step
// budget ramps from the full window T down to the floor (default: the
// t≈(7/8)T accuracy cliff observed on the truncation curve).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "nn/parameter.hpp"
#include "serve/model_cache.hpp"
#include "tensor/tensor.hpp"
#include "util/retry.hpp"

namespace snnsec::serve {

/// Health state of one worker replica.
enum class ReplicaState : std::uint8_t {
  kHealthy,      ///< serving; canaries green
  kQuarantined,  ///< canary diverged / non-finite output; heal before reuse
  kDeposed,      ///< watchdog gave up on the worker; a replacement serves
};

const char* to_string(ReplicaState state);

struct SupervisorConfig {
  bool enabled = false;  ///< master switch; everything below is inert off

  /// Batches between fast canaries (weights digest + armed-fault scan) on
  /// each replica's serving thread. 0 disables the fast tier.
  std::int64_t fast_canary_every = 1;
  /// Milliseconds between deep canaries (probe inference vs golden logits)
  /// per replica. Deep canaries run only in real idle windows — empty
  /// admission queue AND a short batch-free grace period — so the probe
  /// never lands in request tail latency (under closed-loop traffic the
  /// queue transiently empties between batches); under sustained load the
  /// per-batch fast canary carries detection. 0 disables the deep tier.
  std::int64_t canary_interval_ms = 500;
  std::int64_t canary_batch = 1;  ///< probe batch size
  /// Max |logit - golden| tolerated elementwise. The compare is NaN-safe:
  /// a non-finite logit fails at any tolerance.
  double canary_tolerance = 0.0;

  /// Watchdog: a worker that reports busy without a heartbeat for this long
  /// is deposed (its in-flight requests rescued, a replacement spawned).
  /// 0 disables the watchdog.
  std::int64_t heartbeat_timeout_ms = 1000;
  /// Respawn budget per worker context; when exhausted the context stops
  /// healing (resident: deposed for good, inline: supervision disabled).
  std::int64_t max_respawns = 16;
  /// Request retry bound. Only max_attempts is consulted — a retried
  /// request re-enters the batcher immediately, it never sleeps.
  util::RetryPolicy retry{};

  /// Overload governor (graceful degradation before shedding).
  bool governor = true;
  /// Step floor the governor degrades toward. 0 = ceil(7T/8), the edge of
  /// the accuracy cliff on BENCH_serve.json's truncation curve.
  std::int64_t governor_floor_steps = 0;
  double governor_low_frac = 0.25;   ///< queue depth/capacity: start degrading
  double governor_high_frac = 0.75;  ///< queue depth/capacity: floor reached

  void validate() const;
};

/// Snapshot of the supervisor's monotonic counters.
struct SupervisorStats {
  std::int64_t fast_canaries = 0;
  std::int64_t deep_canaries = 0;
  std::int64_t canary_failures = 0;
  std::int64_t quarantines = 0;
  std::int64_t respawns = 0;
  std::int64_t watchdog_trips = 0;
  std::int64_t retries = 0;   ///< requests re-enqueued after a bad replica
  std::int64_t rescues = 0;   ///< in-flight requests pulled off a deposed worker
  std::int64_t nonfinite = 0; ///< finalizations rejected for non-finite logits
  std::int64_t degraded = 0;  ///< requests the governor step-capped
};

class Supervisor {
 public:
  /// Derives the golden state (probe batch, golden logits, golden weights
  /// digest) from the pristine artifact via a throwaway replica.
  Supervisor(SupervisorConfig cfg, const ModelCache::Artifact& artifact);

  const SupervisorConfig& config() const { return cfg_; }

  /// The pinned probe batch [canary_batch, C, H, W].
  const tensor::Tensor& probe() const { return probe_; }
  const tensor::Tensor& golden_logits() const { return golden_logits_; }
  std::uint64_t golden_weights_digest() const { return golden_digest_; }

  /// FNV-1a over every parameter float, in parameter-stack order.
  static std::uint64_t weights_digest(
      const std::vector<nn::Parameter*>& params);

  /// Deep-canary verdict: elementwise |logits - golden| <= tolerance, with
  /// non-finite values always failing.
  bool logits_ok(const tensor::Tensor& logits) const;

  /// Governor: per-batch step budget as a function of queue pressure.
  /// Full window at/below the low watermark, the floor at/above the high
  /// watermark, linear ramp between. Pure and deterministic.
  std::int64_t governed_steps(std::int64_t depth, std::int64_t capacity) const;
  std::int64_t floor_steps() const { return floor_; }

  int max_attempts() const { return cfg_.retry.max_attempts; }

  // Event sinks — bump the local counter and the serve.health.* metric.
  void note_fast_canary();
  void note_deep_canary();
  void note_canary_failure(const char* reason);
  void note_quarantine();
  void note_respawn();
  void note_watchdog_trip();
  void note_retry();
  void note_rescue();
  void note_nonfinite();
  void note_degraded();

  SupervisorStats stats() const;

 private:
  SupervisorConfig cfg_;
  std::int64_t time_steps_;
  std::int64_t floor_;
  tensor::Tensor probe_;
  tensor::Tensor golden_logits_;
  std::uint64_t golden_digest_ = 0;

  std::atomic<std::int64_t> fast_canaries_{0};
  std::atomic<std::int64_t> deep_canaries_{0};
  std::atomic<std::int64_t> canary_failures_{0};
  std::atomic<std::int64_t> quarantines_{0};
  std::atomic<std::int64_t> respawns_{0};
  std::atomic<std::int64_t> watchdog_trips_{0};
  std::atomic<std::int64_t> retries_{0};
  std::atomic<std::int64_t> rescues_{0};
  std::atomic<std::int64_t> nonfinite_{0};
  std::atomic<std::int64_t> degraded_{0};
};

}  // namespace snnsec::serve
