// SNNSEC_HOT: the fast canary runs on the per-batch serving path — steady
// state must not allocate.
#include "serve/supervisor.hpp"

#include <cmath>
#include <cstring>

#include "obs/metrics.hpp"
#include "snn/anytime.hpp"
#include "util/checked.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace snnsec::serve {

using tensor::Shape;
using tensor::Tensor;

const char* to_string(ReplicaState state) {
  switch (state) {
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kQuarantined:
      return "quarantined";
    case ReplicaState::kDeposed:
      return "deposed";
  }
  return "unknown";
}

void SupervisorConfig::validate() const {
  SNNSEC_CHECK(fast_canary_every >= 0,
               "SupervisorConfig: fast_canary_every must be >= 0");
  SNNSEC_CHECK(canary_interval_ms >= 0,
               "SupervisorConfig: canary_interval_ms must be >= 0");
  SNNSEC_CHECK(canary_batch >= 1, "SupervisorConfig: canary_batch must be >= 1");
  SNNSEC_CHECK(canary_tolerance >= 0.0 && std::isfinite(canary_tolerance),
               "SupervisorConfig: canary_tolerance must be finite and >= 0");
  SNNSEC_CHECK(heartbeat_timeout_ms >= 0,
               "SupervisorConfig: heartbeat_timeout_ms must be >= 0");
  SNNSEC_CHECK(max_respawns >= 0,
               "SupervisorConfig: max_respawns must be >= 0");
  SNNSEC_CHECK(governor_floor_steps >= 0,
               "SupervisorConfig: governor_floor_steps must be >= 0");
  SNNSEC_CHECK(governor_low_frac >= 0.0 && governor_high_frac <= 1.0 &&
                   governor_low_frac < governor_high_frac,
               "SupervisorConfig: governor watermarks must satisfy 0 <= low "
               "< high <= 1");
  retry.validate();
}

Supervisor::Supervisor(SupervisorConfig cfg,
                       const ModelCache::Artifact& artifact)
    : cfg_(cfg), time_steps_(artifact.config().time_steps) {
  cfg_.validate();
  floor_ = cfg_.governor_floor_steps > 0
               ? std::min(cfg_.governor_floor_steps, time_steps_)
               : std::max<std::int64_t>(1, (7 * time_steps_ + 7) / 8);
  const nn::LenetSpec& arch = artifact.arch();
  // The probe is a deterministic function of the checkpoint's structural
  // identity, so golden logits computed anywhere for this model agree.
  probe_ = Tensor(Shape{cfg_.canary_batch, arch.in_channels, arch.image_size,
                        arch.image_size});
  util::Rng rng(artifact.config_hash() ^ 0x9e3779b97f4a7c15ULL);
  rng.fill_uniform(probe_.data(), static_cast<std::size_t>(probe_.numel()),
                   0.0f, 1.0f);
  auto pristine = artifact.make_replica();
  golden_digest_ = weights_digest(pristine->parameters());
  snn::AnytimeRunner runner(*pristine);
  golden_logits_ = runner.run(probe_).clone();
  SNNSEC_LOG_INFO("serve: supervisor armed (fast canary every "
                  << cfg_.fast_canary_every << " batches, deep canary every "
                  << cfg_.canary_interval_ms << " ms, heartbeat timeout "
                  << cfg_.heartbeat_timeout_ms << " ms, governor floor "
                  << floor_ << "/" << time_steps_ << " steps)");
}

std::uint64_t Supervisor::weights_digest(
    const std::vector<nn::Parameter*>& params) {
  // FNV-1a over the raw float words: any flipped bit, NaN overwrite or
  // truncated tensor moves the digest.
  std::uint64_t h = 1469598103934665603ULL;
  for (const nn::Parameter* p : params) {
    const float* d = p->value.data();
    const std::int64_t n = p->value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      std::uint32_t word = 0;
      std::memcpy(&word, d + i, sizeof(word));
      h ^= word;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

bool Supervisor::logits_ok(const Tensor& logits) const {
  if (logits.numel() != golden_logits_.numel()) return false;
  const float* a = logits.data();
  const float* g = golden_logits_.data();
  const std::int64_t n = logits.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double diff = std::fabs(static_cast<double>(a[i]) -
                                  static_cast<double>(g[i]));
    // Negated <= so a NaN diff (non-finite logit) fails at any tolerance.
    if (!(diff <= cfg_.canary_tolerance)) return false;
  }
  return true;
}

std::int64_t Supervisor::governed_steps(std::int64_t depth,
                                        std::int64_t capacity) const {
  if (!cfg_.governor || capacity <= 0) return time_steps_;
  const double frac =
      static_cast<double>(depth) / static_cast<double>(capacity);
  if (frac <= cfg_.governor_low_frac) return time_steps_;
  if (frac >= cfg_.governor_high_frac) return floor_;
  const double x = (frac - cfg_.governor_low_frac) /
                   (cfg_.governor_high_frac - cfg_.governor_low_frac);
  const auto cut = static_cast<std::int64_t>(
      std::lround(x * static_cast<double>(time_steps_ - floor_)));
  return time_steps_ - cut;
}

void Supervisor::note_fast_canary() {
  fast_canaries_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.fast_canaries", 1);
}

void Supervisor::note_deep_canary() {
  deep_canaries_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.deep_canaries", 1);
}

void Supervisor::note_canary_failure(const char* reason) {
  canary_failures_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.canary_failures", 1);
  SNNSEC_LOG_WARN("serve: canary failure: " << reason);
}

void Supervisor::note_quarantine() {
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.quarantines", 1);
}

void Supervisor::note_respawn() {
  respawns_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.respawns", 1);
}

void Supervisor::note_watchdog_trip() {
  watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.watchdog_trips", 1);
}

void Supervisor::note_retry() {
  retries_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.retries", 1);
}

void Supervisor::note_rescue() {
  rescues_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.rescues", 1);
}

void Supervisor::note_nonfinite() {
  nonfinite_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.nonfinite", 1);
}

void Supervisor::note_degraded() {
  degraded_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("serve.health.degraded", 1);
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats s;
  s.fast_canaries = fast_canaries_.load(std::memory_order_relaxed);
  s.deep_canaries = deep_canaries_.load(std::memory_order_relaxed);
  s.canary_failures = canary_failures_.load(std::memory_order_relaxed);
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.respawns = respawns_.load(std::memory_order_relaxed);
  s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.rescues = rescues_.load(std::memory_order_relaxed);
  s.nonfinite = nonfinite_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace snnsec::serve
