// Server: in-process, batched, deadline-aware SNN inference runtime.
//
// Request path:
//   infer() -> MicroBatcher admission (shed at capacity) -> micro-batch
//   formed on size/delay -> a worker's AnytimeRunner steps the batch
//   through the time window, finalizing each request as its own step
//   budget or wall-clock deadline is reached -> result delivered to the
//   blocked caller.
//
// Execution modes:
//   workers >= 1 — that many long-lived tasks on util::ThreadPool::global()
//     pull batches concurrently. Each worker owns a private model replica
//     (stamped from the shared ModelCache artifact) and an AnytimeRunner,
//     and runs on its own pool thread, so per-thread util::Workspace arenas
//     never contend. The worker count is clamped to pool_size - 1 so at
//     least one pool thread stays free for nested parallel_for users; when
//     the pool is too small (SNNSEC_THREADS=1) the server falls back to
//     inline mode.
//   workers == 0 (inline) — no resident threads: submitting threads drive
//     batch execution themselves under an execution lock. Deterministic and
//     thread-free, the mode tests and single-threaded benches use.
//
// Anytime semantics: a request's logits after t steps are bit-identical to
// evaluating the same weights with window T' = t (running-max decode), so
// deadline truncation degrades accuracy gracefully instead of shedding —
// the paper's structural time window T acting as a load-shedding knob.
//
// The steady-state request path (warm server, fixed batch geometry)
// performs zero heap allocations end to end; bench_serve asserts this with
// its operator-new hook.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/envelope.hpp"
#include "obs/sketch.hpp"
#include "serve/batcher.hpp"
#include "serve/model_cache.hpp"
#include "serve/request.hpp"
#include "snn/anytime.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::serve {

/// What to do with a request whose anomaly score crosses the threshold.
enum class DetectPolicy : std::uint8_t {
  kObserve,  ///< annotate + count only; the prediction is still served
  kReject,   ///< result status becomes kFlagged (prediction kept for
             ///< forensics, infer() returns false)
};

const char* to_string(DetectPolicy policy);

struct ServerConfig {
  std::string model_path;  ///< checkpoint, loaded via ModelCache::global()
  /// Resident worker tasks on the global thread pool; 0 = inline mode.
  std::int64_t workers = 1;
  BatcherConfig batcher;
  /// A deadline never truncates below this many time steps: the first
  /// steps of the window carry most of the readout signal, and a 0-step
  /// "prediction" would be the -inf init.
  std::int64_t min_steps = 1;
  /// Applied when a request carries deadline_us == 0. 0 = no deadline.
  std::int64_t default_deadline_us = 0;

  /// Online adversarial detection (off unless an envelope is provided).
  /// Path to an obs::ActivityEnvelope calibrated on clean traffic for this
  /// model (snnsec_calibrate). A missing/corrupt/foreign-model file logs a
  /// warning and disables detection rather than failing startup.
  std::string envelope_path;
  /// Pre-loaded envelope (tests/benches); takes precedence over the path.
  std::shared_ptr<const obs::ActivityEnvelope> envelope;
  DetectPolicy detect_policy = DetectPolicy::kObserve;
  /// Anomaly z-score at which a request is flagged.
  double flag_threshold = 4.0;
};

/// Monotonic counters for tests and ops dashboards (mirrored into
/// src/obs metrics under serve.*).
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t errors = 0;
  std::int64_t truncated = 0;
  std::int64_t batches = 0;
  std::int64_t flagged = 0;  ///< detector fired (either policy)
};

class Server {
 public:
  /// Load cfg.model_path through the global ModelCache and start workers.
  explicit Server(ServerConfig cfg);
  /// Serve an already-loaded artifact (cfg.model_path is ignored).
  Server(ServerConfig cfg, std::shared_ptr<const ModelCache::Artifact> model);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Blocking single-image inference: `x` is [C, H, W] or [1, C, H, W].
  /// Returns true when `out.status == kOk`. Safe to call from any number
  /// of threads; each call occupies one admission slot until it returns.
  bool infer(const tensor::Tensor& x, const RequestOptions& opt,
             InferResult& out);

  /// Stop admitting, drain in-flight requests, join workers. Idempotent;
  /// the destructor calls it.
  void stop();

  ServerStats stats() const;
  const snn::SnnConfig& model_config() const { return artifact_->config(); }
  std::int64_t time_steps() const;
  std::int64_t num_classes() const;
  /// Actual resident worker count (0 in inline mode).
  std::int64_t worker_count() const { return num_workers_; }

  /// True when an envelope is installed and every request is being scored.
  bool detector_ready() const { return envelope_ != nullptr; }
  /// The installed envelope (nullptr when detection is off).
  const obs::ActivityEnvelope* envelope() const { return envelope_.get(); }

 private:
  /// Per-admission-slot request state, parallel to the batcher's slot ring.
  struct Slot {
    tensor::Tensor input;  ///< latched image [1, C, H, W]
    RequestOptions opt;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;  ///< epoch = no deadline
    bool has_deadline = false;
    InferResult* out = nullptr;
    bool done = false;
    std::mutex m;
    std::condition_variable cv;
  };

  /// Per-worker execution context: a private model replica + runner and
  /// the reusable batch buffers. Also used (index 0) by inline mode.
  struct Worker {
    std::unique_ptr<snn::SpikingClassifier> model;
    std::unique_ptr<snn::AnytimeRunner> runner;
    tensor::Tensor batch_input;            ///< [B, C, H, W], reused
    std::vector<std::int64_t> slots;       ///< popped slot indices
    std::vector<std::int64_t> budget;      ///< per-request step caps
    std::vector<unsigned char> finalized;  ///< per-request done flags
    obs::SketchAccumulator sketch;         ///< attached when detecting
    obs::ActivitySketch sketch_out;        ///< reused finalize buffer
  };

  void start_workers(std::int64_t requested);
  void worker_loop(Worker& w);
  void execute_batch(Worker& w, std::int64_t n);
  void finalize(Slot& s, Worker& w, std::int64_t row, std::int64_t steps,
                std::int64_t batch_size,
                std::chrono::steady_clock::time_point exec_start);
  void deliver_error(Slot& s, const char* what, std::int64_t batch_size);
  void drive_inline(Slot& own);

  ServerConfig cfg_;
  std::shared_ptr<const ModelCache::Artifact> artifact_;
  std::shared_ptr<const obs::ActivityEnvelope> envelope_;
  /// Envelope age at server start + a steady-clock origin, so the
  /// calibration-staleness gauge needs no wall-clock call on the hot path.
  double detect_age_base_s_ = 0.0;
  std::chrono::steady_clock::time_point start_;
  MicroBatcher batcher_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::int64_t num_workers_ = 0;  ///< 0 = inline mode
  std::mutex inline_m_;           ///< serializes inline batch execution

  std::mutex join_m_;
  std::condition_variable join_cv_;
  std::int64_t live_workers_ = 0;
  std::atomic<bool> stopping_{false};

  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> truncated_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> flagged_{0};
};

}  // namespace snnsec::serve
