// Server: in-process, batched, deadline-aware SNN inference runtime.
//
// Request path:
//   infer() -> MicroBatcher admission (shed at capacity) -> micro-batch
//   formed on size/delay -> a worker's AnytimeRunner steps the batch
//   through the time window, finalizing each request as its own step
//   budget or wall-clock deadline is reached -> result delivered to the
//   blocked caller.
//
// Execution modes:
//   workers >= 1 — that many long-lived tasks on util::ThreadPool::global()
//     pull batches concurrently. Each worker owns a private model replica
//     (stamped from the shared ModelCache artifact) and an AnytimeRunner,
//     and runs on its own pool thread, so per-thread util::Workspace arenas
//     never contend. The worker count is clamped to pool_size - 1 so at
//     least one pool thread stays free for nested parallel_for users; when
//     the pool is too small (SNNSEC_THREADS=1) the server falls back to
//     inline mode.
//   workers == 0 (inline) — no resident threads: submitting threads drive
//     batch execution themselves under an execution lock. Deterministic and
//     thread-free, the mode tests and single-threaded benches use.
//
// Supervision (ServerConfig::supervisor.enabled): a serve::Supervisor turns
// the server self-healing. Each worker replica is health-checked by fast
// (weights digest + armed-fault scan, per batch) and deep (pinned probe vs
// golden logits, periodic) canaries; a replica that diverges, emits
// non-finite logits, or whose worker misses its heartbeat is quarantined
// and respawned in place from the pristine ModelCache artifact, while its
// in-flight requests are transparently re-enqueued under the bounded retry
// policy (slot epochs make stale deliveries no-ops, so a request is
// answered exactly once). A watchdog thread deposes wedged resident
// workers, rescues their in-flight slots and spawns replacements. Under
// queue pressure the overload governor steps the per-batch time-step budget
// down toward the accuracy cliff before the batcher sheds. See
// serve/supervisor.hpp for the policy and DESIGN.md §13 for the protocol.
//
// Anytime semantics: a request's logits after t steps are bit-identical to
// evaluating the same weights with window T' = t (running-max decode), so
// deadline truncation degrades accuracy gracefully instead of shedding —
// the paper's structural time window T acting as a load-shedding knob.
//
// The steady-state request path (warm server, fixed batch geometry)
// performs zero heap allocations end to end — with supervision on, the
// per-batch fast canary is an allocation-free parameter sweep and the deep
// canary runs on a prewarmed dedicated runner; bench_serve and bench_chaos
// assert this with their operator-new hooks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/envelope.hpp"
#include "obs/sketch.hpp"
#include "serve/batcher.hpp"
#include "serve/model_cache.hpp"
#include "serve/request.hpp"
#include "serve/supervisor.hpp"
#include "snn/anytime.hpp"
#include "snn/lif_layer.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::serve {

/// What to do with a request whose anomaly score crosses the threshold.
enum class DetectPolicy : std::uint8_t {
  kObserve,  ///< annotate + count only; the prediction is still served
  kReject,   ///< result status becomes kFlagged (prediction kept for
             ///< forensics, infer() returns false)
  kReroute,  ///< within one Server this behaves like kObserve (the result
             ///< is served, flagged); the fleet Router escalates flagged
             ///< results to the hardened high-Vth group and returns that
             ///< cell's prediction instead (see fleet/router.hpp)
};

const char* to_string(DetectPolicy policy);

/// Handed to the chaos hook at the start of every batch, on the thread that
/// is about to execute it. The model pointer is the live replica — hooks
/// may corrupt weights, arm spike faults, or stall to exercise the
/// supervisor. Test/bench machinery; never set in production configs.
struct ChaosContext {
  std::int64_t replica_id = 0;
  std::int64_t batch_id = 0;
  std::int64_t respawns = 0;  ///< respawns this replica has consumed so far
  snn::SpikingClassifier* model = nullptr;
};
using ChaosHook = std::function<void(const ChaosContext&)>;

struct ServerConfig {
  std::string model_path;  ///< checkpoint, loaded via ModelCache::global()
  /// Resident worker tasks on the global thread pool; 0 = inline mode.
  std::int64_t workers = 1;
  BatcherConfig batcher;
  /// A deadline never truncates below this many time steps: the first
  /// steps of the window carry most of the readout signal, and a 0-step
  /// "prediction" would be the -inf init.
  std::int64_t min_steps = 1;
  /// Applied when a request carries deadline_us == 0. 0 = no deadline.
  std::int64_t default_deadline_us = 0;

  /// Online adversarial detection (off unless an envelope is provided).
  /// Path to an obs::ActivityEnvelope calibrated on clean traffic for this
  /// model (snnsec_calibrate). A missing/corrupt/foreign-model file logs a
  /// warning and disables detection rather than failing startup.
  std::string envelope_path;
  /// Pre-loaded envelope (tests/benches); takes precedence over the path.
  std::shared_ptr<const obs::ActivityEnvelope> envelope;
  DetectPolicy detect_policy = DetectPolicy::kObserve;
  /// Anomaly z-score at which a request is flagged. Must be finite and
  /// >= 0 (validated at construction).
  double flag_threshold = 4.0;

  /// Replica supervision / self-healing (see serve/supervisor.hpp).
  SupervisorConfig supervisor;
  /// Chaos mode: construct request runners with allow_faults so armed
  /// LifLayer spike faults are replayed per step instead of rejected.
  bool allow_faults = false;
  /// Fault-injection hook for the chaos harness (see ChaosContext).
  ChaosHook chaos_on_batch;
};

/// Monotonic counters for tests and ops dashboards (mirrored into
/// src/obs metrics under serve.* / serve.health.*).
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t errors = 0;
  std::int64_t truncated = 0;
  std::int64_t batches = 0;
  std::int64_t flagged = 0;  ///< detector fired (either policy)
  // Supervision (all zero when the supervisor is off).
  std::int64_t canary_failures = 0;
  std::int64_t quarantines = 0;
  std::int64_t respawns = 0;
  std::int64_t watchdog_trips = 0;
  std::int64_t retries = 0;
  std::int64_t rescues = 0;
  std::int64_t degraded = 0;
};

class Server {
 public:
  /// Load cfg.model_path through the global ModelCache and start workers.
  explicit Server(ServerConfig cfg);
  /// Serve an already-loaded artifact (cfg.model_path is ignored).
  Server(ServerConfig cfg, std::shared_ptr<const ModelCache::Artifact> model);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Blocking single-image inference: `x` is [C, H, W] or [1, C, H, W].
  /// Returns true when `out.status == kOk`. Safe to call from any number
  /// of threads; each call occupies one admission slot until it returns.
  /// Non-finite pixels are rejected before admission (status kError).
  bool infer(const tensor::Tensor& x, const RequestOptions& opt,
             InferResult& out);

  /// Stop admitting, drain in-flight requests, join workers. Idempotent;
  /// the destructor calls it.
  void stop();

  ServerStats stats() const;
  const snn::SnnConfig& model_config() const { return artifact_->config(); }
  std::int64_t time_steps() const;
  std::int64_t num_classes() const;
  /// Actual resident worker count (0 in inline mode).
  std::int64_t worker_count() const { return num_workers_; }

  /// True when an envelope is installed and every request is being scored.
  bool detector_ready() const { return envelope_ != nullptr; }
  /// The installed envelope (nullptr when detection is off).
  const obs::ActivityEnvelope* envelope() const { return envelope_.get(); }

  /// The supervisor (nullptr when supervision is off).
  const Supervisor* supervisor() const { return sup_.get(); }

 private:
  /// Per-admission-slot request state, parallel to the batcher's slot ring.
  struct Slot {
    tensor::Tensor input;  ///< latched image [1, C, H, W]
    RequestOptions opt;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;  ///< epoch = no deadline
    bool has_deadline = false;
    InferResult* out = nullptr;
    bool done = false;
    /// Retry generation. An executor latches the value at batch formation
    /// and may deliver only while it still matches; a requeue bumps it, so
    /// a stale (quarantined/deposed) executor's delivery is a no-op.
    std::atomic<std::int64_t> epoch{0};
    std::atomic<std::int64_t> attempts{0};  ///< executions started
    std::mutex m;
    std::condition_variable cv;
  };

  /// Per-worker execution context: a private model replica + runner and
  /// the reusable batch buffers. Also used (index 0) by inline mode.
  struct Worker {
    std::int64_t id = 0;
    std::unique_ptr<snn::SpikingClassifier> model;
    std::unique_ptr<snn::AnytimeRunner> runner;
    tensor::Tensor batch_input;            ///< [B, C, H, W], reused
    std::vector<std::int64_t> slots;       ///< popped slot indices
    std::vector<std::int64_t> budget;      ///< per-request step caps
    std::vector<unsigned char> finalized;  ///< per-request done flags
    obs::SketchAccumulator sketch;         ///< attached when detecting
    obs::ActivitySketch sketch_out;        ///< reused finalize buffer
    // Supervision state (inert when the supervisor is off).
    std::unique_ptr<snn::AnytimeRunner> canary_runner;  ///< deep canary only
    std::vector<nn::Parameter*> params;    ///< cached for the weights digest
    std::vector<snn::LifLayer*> lifs;      ///< cached for the fault scan
    std::vector<std::int64_t> epochs;      ///< per-row latched slot epochs
    std::vector<unsigned char> degraded;   ///< per-row governor-capped flag
    std::atomic<ReplicaState> state{ReplicaState::kHealthy};
    std::atomic<bool> busy{false};         ///< inside execute_batch
    std::atomic<std::int64_t> hb_ms{0};    ///< last heartbeat (ms since start)
    std::atomic<std::int64_t> last_canary_ms{0};
    std::atomic<std::int64_t> current_batch{-1};
    std::atomic<bool> deposed{false};
    std::atomic<bool> supervision_disabled{false};
    std::atomic<std::int64_t> respawns{0};
    std::int64_t batches_since_canary = 0;  ///< owner-thread only
    std::int64_t last_trip_batch = -1;      ///< supervisor-thread only
    /// In-flight slot indices published for watchdog rescue.
    std::vector<std::atomic<std::int64_t>> active_slots;
    std::atomic<std::int64_t> active_n{0};
  };

  std::unique_ptr<Worker> make_worker_context(std::int64_t id);
  void start_workers(std::int64_t requested);
  void worker_loop(Worker& w);
  void execute_batch(Worker& w, std::int64_t n);
  void finalize(Slot& s, Worker& w, std::int64_t row, std::int64_t steps,
                std::int64_t batch_size,
                std::chrono::steady_clock::time_point exec_start);
  void deliver_error(Slot& s, const char* what, std::int64_t batch_size,
                     std::int64_t latched_epoch);
  void drive_inline(Slot& own);
  // Supervision internals. maintain/fast_canary/deep_canary/heal run on the
  // thread that owns the worker context (its pool thread, or the supervisor
  // thread under inline_m_ in inline mode).
  void maintain(Worker& w);
  void fast_canary(Worker& w);
  void deep_canary(Worker& w);
  void heal(Worker& w);
  void quarantine(Worker& w, const char* reason);
  /// Re-enqueue the request in `slot_idx` for another attempt (bumping its
  /// epoch), or deliver a final error when the retry budget is exhausted.
  /// `latched_epoch` guards ownership (-1 = adopt the current epoch, used
  /// by the watchdog rescuing a wedged worker's batch). No-op when the
  /// request was already delivered or the epoch moved on.
  void retry_slot(std::int64_t slot_idx, std::int64_t latched_epoch,
                  const char* why, std::int64_t batch_size);
  void supervise_loop();
  void depose_and_respawn(Worker& w, std::int64_t now_ms);
  std::int64_t now_ms() const;

  ServerConfig cfg_;
  std::shared_ptr<const ModelCache::Artifact> artifact_;
  std::shared_ptr<const obs::ActivityEnvelope> envelope_;
  /// Envelope age at server start + a steady-clock origin, so the
  /// calibration-staleness gauge needs no wall-clock call on the hot path.
  double detect_age_base_s_ = 0.0;
  std::chrono::steady_clock::time_point start_;
  MicroBatcher batcher_;
  std::vector<std::unique_ptr<Slot>> slots_;
  /// Worker contexts. Grows only on the supervisor thread (replacement
  /// spawn); Worker objects are heap-stable across growth.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::int64_t num_workers_ = 0;  ///< 0 = inline mode
  std::mutex inline_m_;           ///< serializes inline batch execution

  std::unique_ptr<Supervisor> sup_;  ///< null when supervision is off
  std::thread sup_thread_;
  std::atomic<bool> sup_stop_{false};
  /// ms-since-start of the last batch completion: the deep canary requires
  /// a real idle window (empty queue AND no recent batch), because under
  /// closed-loop traffic the queue transiently empties between batches and
  /// a probe in that gap lands straight in request tail latency.
  std::atomic<std::int64_t> last_batch_end_ms_{0};

  std::mutex join_m_;
  std::condition_variable join_cv_;
  std::int64_t live_workers_ = 0;
  std::atomic<bool> stopping_{false};

  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> truncated_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> flagged_{0};
};

}  // namespace snnsec::serve
