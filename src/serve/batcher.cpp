// SNNSEC_HOT: per-request admission/batching path — steady state must not
// allocate.
#include "serve/batcher.hpp"

#include <algorithm>

#include "util/checked.hpp"

namespace snnsec::serve {

void BatcherConfig::validate() const {
  SNNSEC_CHECK(max_batch >= 1, "BatcherConfig: max_batch must be >= 1, got "
                                   << max_batch);
  SNNSEC_CHECK(max_delay_us >= 0,
               "BatcherConfig: max_delay_us must be >= 0, got "
                   << max_delay_us);
  SNNSEC_CHECK(capacity >= max_batch,
               "BatcherConfig: capacity " << capacity
                                          << " must be >= max_batch "
                                          << max_batch);
}

MicroBatcher::MicroBatcher(BatcherConfig cfg)
    : cfg_(cfg),
      fifo_(static_cast<std::size_t>(cfg.capacity), 0),
      free_(static_cast<std::size_t>(cfg.capacity), 0),
      free_top_(cfg.capacity),
      enq_time_(static_cast<std::size_t>(cfg.capacity)) {
  cfg_.validate();
  for (std::int64_t i = 0; i < cfg_.capacity; ++i)
    free_[static_cast<std::size_t>(i)] = i;
}

// SNNSEC_HOT entry: admission fast path, called once per request.
std::int64_t MicroBatcher::try_acquire() {
  // NOLINTNEXTLINE(snnsec-hot-path-lock): admission lock, O(1) critical section
  std::lock_guard<std::mutex> lk(m_);
  if (stopped_ || free_top_ == 0) return -1;
  --free_top_;
  return free_[static_cast<std::size_t>(free_top_)];
}

// SNNSEC_HOT entry: publish path, called once per admitted request.
void MicroBatcher::enqueue(std::int64_t slot) {
  {
    // NOLINTNEXTLINE(snnsec-hot-path-lock): ring publish, O(1) critical section
    std::lock_guard<std::mutex> lk(m_);
    SNNSEC_CHECK(count_ < cfg_.capacity,
                 "MicroBatcher::enqueue: ring overflow (slot " << slot
                                                               << ")");
    const std::int64_t tail = (head_ + count_) % cfg_.capacity;
    fifo_[static_cast<std::size_t>(tail)] = slot;
    enq_time_[static_cast<std::size_t>(slot)] =
        std::chrono::steady_clock::now();
    ++count_;
  }
  cv_ready_.notify_one();
}

std::int64_t MicroBatcher::next_batch(std::int64_t* out) {
  const auto delay = std::chrono::microseconds(cfg_.max_delay_us);
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    if (count_ > 0) {
      if (count_ >= cfg_.max_batch || stopped_) break;
      const auto flush_at =
          enq_time_[static_cast<std::size_t>(
              fifo_[static_cast<std::size_t>(head_)])] +
          delay;
      if (std::chrono::steady_clock::now() >= flush_at) break;
      cv_ready_.wait_until(lk, flush_at);
    } else {
      if (stopped_) return 0;
      cv_ready_.wait(lk);
    }
  }
  const std::int64_t n = std::min(count_, cfg_.max_batch);
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = fifo_[static_cast<std::size_t>((head_ + i) % cfg_.capacity)];
  }
  head_ = (head_ + n) % cfg_.capacity;
  count_ -= n;
  return n;
}

std::int64_t MicroBatcher::next_batch_for(std::int64_t* out,
                                          std::int64_t timeout_us) {
  const auto delay = std::chrono::microseconds(cfg_.max_delay_us);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    if (count_ > 0) {
      if (count_ >= cfg_.max_batch || stopped_) break;
      const auto flush_at =
          enq_time_[static_cast<std::size_t>(
              fifo_[static_cast<std::size_t>(head_)])] +
          delay;
      if (std::chrono::steady_clock::now() >= flush_at) break;
      // A pending request always flushes by its own deadline even when that
      // lands past the caller's timeout — maintenance can wait one batch.
      cv_ready_.wait_until(lk, flush_at);
    } else {
      if (stopped_) return 0;
      if (std::chrono::steady_clock::now() >= give_up) return -1;
      cv_ready_.wait_until(lk, give_up);
    }
  }
  const std::int64_t n = std::min(count_, cfg_.max_batch);
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = fifo_[static_cast<std::size_t>((head_ + i) % cfg_.capacity)];
  }
  head_ = (head_ + n) % cfg_.capacity;
  count_ -= n;
  return n;
}

// SNNSEC_HOT entry: slot recycling, called once per completed request.
void MicroBatcher::release(std::int64_t slot) {
  // NOLINTNEXTLINE(snnsec-hot-path-lock): slot recycle, O(1) critical section
  std::lock_guard<std::mutex> lk(m_);
  SNNSEC_CHECK(slot >= 0 && slot < cfg_.capacity && free_top_ < cfg_.capacity,
               "MicroBatcher::release: bad slot " << slot);
  free_[static_cast<std::size_t>(free_top_)] = slot;
  ++free_top_;
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stopped_ = true;
  }
  cv_ready_.notify_all();
}

bool MicroBatcher::stopped() const {
  std::lock_guard<std::mutex> lk(m_);
  return stopped_;
}

std::int64_t MicroBatcher::depth() const {
  // NOLINTNEXTLINE(snnsec-hot-path-lock): single-field snapshot, O(1) critical section
  std::lock_guard<std::mutex> lk(m_);
  return count_;
}

}  // namespace snnsec::serve
