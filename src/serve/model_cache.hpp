// ModelCache: warm cache of validated checkpoints for the serving runtime.
//
// Loading a checkpoint costs file I/O plus the full validation chain
// (digest, config hash, architecture fingerprint). The cache pays that once
// per distinct model and hands out shared immutable Artifacts; workers then
// stamp out private replicas (mutable SpikingClassifier instances with
// their own forward state) from the in-memory payload without touching the
// filesystem again.
//
// Keying: artifacts are looked up by path, but deduplicated by
// (config_hash, payload digest) — the structural-parameter fingerprint
// (Vth, T, taus, encoder, ...) plus content identity — so two paths holding
// the same bytes share one artifact, while a retrained file with identical
// structure but different weights does not alias a stale entry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "snn/model_io.hpp"

namespace snnsec::serve {

class ModelCache {
 public:
  /// An immutable loaded checkpoint. Thread-safe to share: replicas are
  /// built from the payload, never from each other.
  struct Artifact {
    snn::CheckpointPayload payload;
    std::string path;  ///< first path this artifact was loaded from

    std::uint64_t config_hash() const { return payload.config_hash; }
    std::uint64_t digest() const { return payload.digest; }
    const nn::LenetSpec& arch() const { return payload.arch; }
    const snn::SnnConfig& config() const { return payload.config; }

    /// Build an independent model replica with the stored weights.
    std::unique_ptr<snn::SpikingClassifier> make_replica() const;
  };

  ModelCache() = default;

  /// Load (or return the cached) validated checkpoint at `path`. Throws
  /// util::Error when the file is missing, corrupt or mismatched.
  std::shared_ptr<const Artifact> acquire(const std::string& path);

  /// Drop every cached artifact (outstanding shared_ptrs stay valid).
  void clear();

  std::int64_t hits() const;
  std::int64_t misses() const;

  /// Process-wide cache used by Server when given a path.
  static ModelCache& global();

 private:
  mutable std::mutex m_;
  std::map<std::string, std::shared_ptr<const Artifact>> by_path_;
  /// (config_hash, digest) -> artifact, for cross-path deduplication.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::weak_ptr<const Artifact>>
      by_identity_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace snnsec::serve
