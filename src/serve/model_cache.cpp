#include "serve/model_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace snnsec::serve {

std::unique_ptr<snn::SpikingClassifier> ModelCache::Artifact::make_replica()
    const {
  // Counted so respawn storms are visible in the metrics registry even when
  // the supervisor's own counters are not being scraped.
  SNNSEC_COUNTER_ADD("serve.model_cache.replicas_stamped", 1);
  return snn::rebuild_spiking_lenet(payload, path);
}

std::shared_ptr<const ModelCache::Artifact> ModelCache::acquire(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = by_path_.find(path);
    if (it != by_path_.end()) {
      ++hits_;
      SNNSEC_COUNTER_ADD("serve.model_cache.hits", 1);
      return it->second;
    }
  }
  // Load + validate outside the lock: a slow disk must not stall servers
  // hitting already-warm entries.
  auto artifact = std::make_shared<Artifact>();
  artifact->payload = snn::load_validated_payload(path);
  artifact->path = path;

  std::lock_guard<std::mutex> lk(m_);
  const auto identity =
      std::make_pair(artifact->payload.config_hash, artifact->payload.digest);
  if (auto cached = by_identity_[identity].lock()) {
    // Another thread (or another path with identical bytes) won the race.
    ++hits_;
    SNNSEC_COUNTER_ADD("serve.model_cache.hits", 1);
    by_path_.emplace(path, cached);
    return cached;
  }
  ++misses_;
  SNNSEC_COUNTER_ADD("serve.model_cache.misses", 1);
  SNNSEC_LOG_INFO("model cache: loaded "
                  << path << " (config_hash=" << artifact->payload.config_hash
                  << ", T=" << artifact->payload.config.time_steps
                  << ", v_th=" << artifact->payload.config.v_th << ")");
  std::shared_ptr<const Artifact> shared = std::move(artifact);
  by_identity_[identity] = shared;
  by_path_.emplace(path, shared);
  return shared;
}

void ModelCache::clear() {
  std::lock_guard<std::mutex> lk(m_);
  by_path_.clear();
  by_identity_.clear();
}

std::int64_t ModelCache::hits() const {
  std::lock_guard<std::mutex> lk(m_);
  return hits_;
}

std::int64_t ModelCache::misses() const {
  std::lock_guard<std::mutex> lk(m_);
  return misses_;
}

ModelCache& ModelCache::global() {
  static ModelCache cache;
  return cache;
}

}  // namespace snnsec::serve
