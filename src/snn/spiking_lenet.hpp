// Spiking LeNet builder: the SNN counterpart of nn::build_paper_cnn with
// "the same number of layers and neurons per layer" (paper, Sec. I-B).
//
// Structure (time-major sequence in, logits out):
//   encoder (constant-current LIF or Poisson)
//   conv1 5x5 -> LIF -> avgpool2
//   conv2 5x5 -> LIF -> avgpool2
//   conv3 3x3 -> LIF
//   flatten -> fc1 -> LIF -> fc2 -> LiReadout (max-over-time)
//
// SnnConfig carries the paper's two structural parameters: the firing
// threshold v_th (applied to every LIF population, encoder included) and
// the time window T.
#pragma once

#include <memory>

#include "nn/lenet.hpp"
#include "snn/alif_layer.hpp"
#include "snn/encoder.hpp"
#include "snn/spiking_network.hpp"

namespace snnsec::snn {

/// Hidden-layer neuron model (the encoder stays plain LIF).
enum class NeuronModel {
  kLif,   ///< the paper's leaky integrate-and-fire
  kAlif,  ///< adaptive-threshold LIF (extension studies)
};

struct SnnConfig {
  double v_th = 1.0;             ///< structural parameter #1
  std::int64_t time_steps = 64;  ///< structural parameter #2 (T)
  Surrogate surrogate{};
  LifParameters neuron;          ///< taus/dt template; v_th is overridden
  NeuronModel neuron_model = NeuronModel::kLif;
  float alif_beta = 0.5f;        ///< ALIF threshold boost per adaptation
  float alif_rho = 0.9f;         ///< ALIF adaptation decay
  EncoderKind encoder = EncoderKind::kConstantCurrentLif;
  bool encoder_uses_vth = true;  ///< sweep the encoder threshold too
  std::uint64_t poisson_seed = 7;
  /// Multiplier on conv/linear weight init. Zero-mean Kaiming weights give
  /// spiking inputs sub-threshold synaptic currents and the deep layers
  /// never fire; a gain of a few (standard SNN practice, cf. SpyTorch's
  /// scaled initialization) puts membrane potentials in the threshold's
  /// working range. Applied to weights only, not biases.
  double weight_gain = 16.0;
  /// Gain on the pixel current fed to the encoder. Plays the role of
  /// Norse's MNIST normalization ((x - 0.1307)/0.3081 stretches pixels to
  /// ~[0, 2.8]): stroke pixels then drive the encoder well above threshold
  /// and the input spike trains carry usable rate information.
  double input_gain = 3.0;

  /// LIF parameters with this config's threshold applied.
  LifParameters lif_params() const;

  void validate() const;
};

/// Build the spiking LeNet for `spec` with structural parameters `config`.
std::unique_ptr<SpikingClassifier> build_spiking_lenet(
    const nn::LenetSpec& spec, const SnnConfig& config, util::Rng& rng);

}  // namespace snnsec::snn
