#include "snn/spiking_network.hpp"

#include <cstring>
#include <sstream>

#include "obs/trace.hpp"

namespace snnsec::snn {

using tensor::Shape;
using tensor::Tensor;

SpikingClassifier::SpikingClassifier(std::unique_ptr<nn::Sequential> net,
                                     std::int64_t time_steps,
                                     std::int64_t num_classes,
                                     std::string description)
    : net_(std::move(net)),
      time_steps_(time_steps),
      num_classes_(num_classes),
      description_(std::move(description)) {
  SNNSEC_CHECK(net_ != nullptr, "SpikingClassifier: null network");
  SNNSEC_CHECK(time_steps_ > 0, "SpikingClassifier: T must be positive");
  SNNSEC_CHECK(num_classes_ > 1, "SpikingClassifier: need >= 2 classes");
}

Tensor SpikingClassifier::replicate_over_time(const Tensor& x,
                                              std::int64_t time_steps) {
  std::vector<std::int64_t> dims = x.shape().dims();
  SNNSEC_CHECK(!dims.empty(), "replicate_over_time: rank-0 input");
  dims[0] *= time_steps;
  Tensor out((Shape(dims)));
  const std::size_t block = static_cast<std::size_t>(x.numel());
  for (std::int64_t t = 0; t < time_steps; ++t)
    std::memcpy(out.data() + static_cast<std::size_t>(t) * block, x.data(),
                block * sizeof(float));
  return out;
}

Tensor SpikingClassifier::sum_over_time(const Tensor& x,
                                        std::int64_t time_steps) {
  std::vector<std::int64_t> dims = x.shape().dims();
  SNNSEC_CHECK(!dims.empty() && dims[0] % time_steps == 0,
               "sum_over_time: dim0 not divisible by T");
  dims[0] /= time_steps;
  Tensor out((Shape(dims)));
  const std::int64_t block = out.numel();
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t t = 0; t < time_steps; ++t) {
    const float* src = px + t * block;
    for (std::int64_t i = 0; i < block; ++i) po[i] += src[i];
  }
  return out;
}

Tensor SpikingClassifier::logits(const Tensor& x) {
  SNNSEC_TRACE_SCOPE("snn.forward");
  return net_->forward(replicate_over_time(x, time_steps_), nn::Mode::kEval);
}

Tensor SpikingClassifier::input_gradient(
    const Tensor& x, const std::vector<std::int64_t>& labels,
    double* loss_out) {
  SNNSEC_TRACE_SCOPE("snn.input_gradient");
  const Tensor out =
      net_->forward(replicate_over_time(x, time_steps_), nn::Mode::kAttack);
  const double loss = loss_.forward(out, labels);
  if (loss_out != nullptr) *loss_out = loss;
  const Tensor grad_seq = net_->backward(loss_.backward());
  return sum_over_time(grad_seq, time_steps_);
}

Tensor SpikingClassifier::output_gradient(const Tensor& x,
                                          const Tensor& cotangent) {
  const Tensor out =
      net_->forward(replicate_over_time(x, time_steps_), nn::Mode::kAttack);
  SNNSEC_CHECK(cotangent.shape() == out.shape(),
               "output_gradient: cotangent shape "
                   << cotangent.shape().to_string() << " != logits shape "
                   << out.shape().to_string());
  const Tensor grad_seq = net_->backward(cotangent);
  return sum_over_time(grad_seq, time_steps_);
}

double SpikingClassifier::train_batch(const Tensor& x,
                                      const std::vector<std::int64_t>& labels,
                                      nn::Optimizer& optimizer) {
  optimizer.zero_grad();
  Tensor out;
  {
    SNNSEC_TRACE_SCOPE("snn.forward");
    out = net_->forward(replicate_over_time(x, time_steps_), nn::Mode::kTrain);
  }
  const double loss = loss_.forward(out, labels);
  {
    SNNSEC_TRACE_SCOPE("snn.bptt");
    net_->backward(loss_.backward());
  }
  optimizer.step();
  return loss;
}

std::vector<nn::Parameter*> SpikingClassifier::parameters() {
  return net_->parameters();
}

std::vector<double> SpikingClassifier::spike_rates() const {
  std::vector<double> rates;
  auto* self = const_cast<SpikingClassifier*>(this);
  for (std::size_t i = 0; i < self->net_->size(); ++i) {
    if (const auto* lif = dynamic_cast<const LifLayer*>(&self->net_->layer(i)))
      rates.push_back(lif->last_spike_rate());
  }
  return rates;
}

std::vector<obs::ActivityStats> SpikingClassifier::collect_activity(
    const Tensor& x) {
  SNNSEC_TRACE_SCOPE("snn.probe");
  std::vector<LifLayer*> lifs;
  for (std::size_t i = 0; i < net_->size(); ++i) {
    if (auto* lif = dynamic_cast<LifLayer*>(&net_->layer(i))) {
      lif->set_probe(true);
      lifs.push_back(lif);
    }
  }
  net_->forward(replicate_over_time(x, time_steps_), nn::Mode::kEval);
  std::vector<obs::ActivityStats> stats;
  stats.reserve(lifs.size());
  for (std::size_t i = 0; i < lifs.size(); ++i) {
    lifs[i]->set_probe(false);
    obs::ActivityStats s = lifs[i]->last_activity();
    s.layer = "lif" + std::to_string(i);
    stats.push_back(std::move(s));
  }
  return stats;
}

std::string SpikingClassifier::describe() const {
  std::ostringstream oss;
  oss << description_ << " (T=" << time_steps_ << ")\n" << net_->summary();
  return oss.str();
}

}  // namespace snnsec::snn
