#include "snn/encoder.hpp"

#include <cmath>
#include <sstream>

namespace snnsec::snn {

using tensor::Tensor;

std::unique_ptr<nn::Layer> make_constant_current_encoder(
    std::int64_t time_steps, LifParameters params, Surrogate surrogate) {
  return std::make_unique<LifLayer>(time_steps, params, surrogate);
}

PoissonEncoder::PoissonEncoder(std::int64_t time_steps, util::Rng rng)
    : time_steps_(time_steps), rng_(rng) {
  SNNSEC_CHECK(time_steps_ > 0, "PoissonEncoder: time_steps must be positive");
}

Tensor PoissonEncoder::forward(const Tensor& x, nn::Mode mode) {
  SNNSEC_CHECK(x.dim(0) % time_steps_ == 0,
               name() << ": dim0 not divisible by T=" << time_steps_);
  Tensor z(x.shape());
  const float* px = x.data();
  float* pz = z.data();
  const std::int64_t n = x.numel();
  Tensor gate(x.shape());
  float* pgate = gate.data();
  for (std::int64_t i = 0; i < n; ++i) {
    // NaN fails both clamp comparisons and would flow into bernoulli(NaN);
    // treat any non-finite pixel as rate 0, the same "poisoned input is
    // inert" contract MembraneHistSpec::index uses.
    const float v = px[i];
    const float p =
        std::isfinite(v) ? (v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v)) : 0.0f;
    pz[i] = rng_.bernoulli(p) ? 1.0f : 0.0f;
    pgate[i] = (v > 0.0f && v < 1.0f) ? 1.0f : 0.0f;
  }
  if (nn::cache_enabled(mode)) {
    gate_ = std::move(gate);
    have_cache_ = true;
  }
  return z;
}

Tensor PoissonEncoder::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_ && grad_out.shape() == gate_.shape(),
               name() << "::backward cache/shape mismatch");
  // Straight-through: E[z] = clamp(x, 0, 1), so dE[z]/dx = 1 inside (0, 1).
  Tensor dx = grad_out;
  dx.mul_(gate_);
  return dx;
}

std::string PoissonEncoder::name() const {
  std::ostringstream oss;
  oss << "PoissonEncoder(T=" << time_steps_ << ")";
  return oss.str();
}

}  // namespace snnsec::snn
