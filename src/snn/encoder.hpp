// Spike encoders: pixel intensities -> spike trains over the time window.
//
// ConstantCurrentLifEncoder (Norse's default, used by the paper's pipeline)
// feeds each pixel value as a constant input current into a LIF population;
// brighter pixels charge faster and fire more often. It is exactly a
// LifLayer applied to the time-replicated image, so white-box gradients
// flow through the same surrogate machinery as the rest of the network.
//
// PoissonEncoder (rate-coding ablation) draws Bernoulli spikes with
// probability clamp(x, 0, 1) per step; gradients use the straight-through
// estimator gated by the clamp.
#pragma once

#include <memory>

#include "nn/layer.hpp"
#include "snn/lif_layer.hpp"
#include "util/rng.hpp"

namespace snnsec::snn {

enum class EncoderKind { kConstantCurrentLif, kPoisson };

/// Build the constant-current LIF encoder (just a configured LifLayer).
std::unique_ptr<nn::Layer> make_constant_current_encoder(
    std::int64_t time_steps, LifParameters params, Surrogate surrogate);

class PoissonEncoder final : public nn::Layer {
 public:
  PoissonEncoder(std::int64_t time_steps, util::Rng rng);

  tensor::Tensor forward(const tensor::Tensor& x, nn::Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "PoissonEncoder"; }
  void clear_cache() override { gate_ = tensor::Tensor(); }

  std::int64_t time_steps() const { return time_steps_; }

 private:
  std::int64_t time_steps_;
  util::Rng rng_;
  tensor::Tensor gate_;  // straight-through mask: 1 where 0 < x < 1
  bool have_cache_ = false;
};

}  // namespace snnsec::snn
