#include "snn/surrogate.hpp"

#include <cmath>
#include <sstream>

namespace snnsec::snn {

float Surrogate::grad(float u) const {
  switch (kind) {
    case SurrogateKind::kSuperSpike: {
      const float d = 1.0f + alpha * std::fabs(u);
      return 1.0f / (d * d);
    }
    case SurrogateKind::kTriangle: {
      const float v = 1.0f - alpha * std::fabs(u);
      return v > 0.0f ? v : 0.0f;
    }
    case SurrogateKind::kSigmoidDeriv: {
      const float s = 1.0f / (1.0f + std::exp(-alpha * u));
      return alpha * s * (1.0f - s);
    }
    case SurrogateKind::kStraightThrough:
      return std::fabs(u) < 0.5f / alpha ? 1.0f : 0.0f;
  }
  return 0.0f;
}

std::string Surrogate::to_string() const {
  std::ostringstream oss;
  switch (kind) {
    case SurrogateKind::kSuperSpike: oss << "SuperSpike"; break;
    case SurrogateKind::kTriangle: oss << "Triangle"; break;
    case SurrogateKind::kSigmoidDeriv: oss << "SigmoidDeriv"; break;
    case SurrogateKind::kStraightThrough: oss << "StraightThrough"; break;
  }
  oss << "(alpha=" << alpha << ")";
  return oss.str();
}

}  // namespace snnsec::snn
