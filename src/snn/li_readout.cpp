#include "snn/li_readout.hpp"

#include <limits>
#include <sstream>
#include <vector>

namespace snnsec::snn {

using tensor::Shape;
using tensor::Tensor;

LiReadout::LiReadout(std::int64_t time_steps, LifParameters params)
    : time_steps_(time_steps), params_(params) {
  SNNSEC_CHECK(time_steps_ > 0, "LiReadout: time_steps must be positive");
  params_.validate();
}

Tensor LiReadout::forward(const Tensor& x, nn::Mode mode) {
  SNNSEC_CHECK(x.ndim() == 2, name() << ": expects [T*N, C], got "
                                     << x.shape().to_string());
  const std::int64_t total = x.dim(0);
  const std::int64_t classes = x.dim(1);
  SNNSEC_CHECK(total % time_steps_ == 0,
               name() << ": dim0 " << total << " not divisible by T="
                      << time_steps_);
  const std::int64_t n = total / time_steps_;
  const std::int64_t per_step = n * classes;

  Tensor trace(x.shape());
  std::vector<float> state_i(static_cast<std::size_t>(per_step), 0.0f);
  std::vector<float> state_v(static_cast<std::size_t>(per_step), 0.0f);
  const float* px = x.data();
  float* pt = trace.data();
  for (std::int64_t t = 0; t < time_steps_; ++t) {
    const std::int64_t off = t * per_step;
    li_step(params_, per_step, px + off, state_i.data(), state_v.data(),
            pt + off);
  }

  // Decode: per (n, c) take the max membrane over time.
  Tensor logits(Shape{n, classes},
                -std::numeric_limits<float>::infinity());
  std::vector<std::int64_t> argmax(static_cast<std::size_t>(per_step), 0);
  float* pl = logits.data();
  for (std::int64_t t = 0; t < time_steps_; ++t) {
    const float* row = pt + t * per_step;
    for (std::int64_t k = 0; k < per_step; ++k) {
      if (row[k] > pl[k]) {
        pl[k] = row[k];
        argmax[static_cast<std::size_t>(k)] = t;
      }
    }
  }

  if (nn::cache_enabled(mode)) {
    trace_ = std::move(trace);
    argmax_t_ = std::move(argmax);
    per_step_ = per_step;
    have_cache_ = true;
  }
  return logits;
}

Tensor LiReadout::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, name() << "::backward without cached forward");
  SNNSEC_CHECK(grad_out.ndim() == 2 &&
                   grad_out.numel() == per_step_,
               name() << "::backward: bad grad shape "
                      << grad_out.shape().to_string());
  const float a = params_.a();
  const float b = params_.b();

  Tensor dx(trace_.shape());
  const float* pg = grad_out.data();
  float* pdx = dx.data();

  // Reverse-time linear recurrence with the max-decode gradient injected at
  // each (n, c)'s winning step.
  std::vector<float> gv(static_cast<std::size_t>(per_step_), 0.0f);
  std::vector<float> gi(static_cast<std::size_t>(per_step_), 0.0f);
  for (std::int64_t t = time_steps_ - 1; t >= 0; --t) {
    const std::int64_t off = t * per_step_;
    for (std::int64_t k = 0; k < per_step_; ++k) {
      float carry_v = gv[static_cast<std::size_t>(k)];
      if (argmax_t_[static_cast<std::size_t>(k)] == t) carry_v += pg[k];
      const float carry_i = gi[static_cast<std::size_t>(k)];
      pdx[off + k] = carry_i;
      gv[static_cast<std::size_t>(k)] = carry_v * (1.0f - a);
      gi[static_cast<std::size_t>(k)] = carry_v * a + carry_i * b;
    }
  }
  return dx;
}

std::string LiReadout::name() const {
  std::ostringstream oss;
  oss << "LiReadout(T=" << time_steps_ << ", max-over-time)";
  return oss.str();
}

void LiReadout::clear_cache() {
  trace_ = Tensor();
  argmax_t_.clear();
  have_cache_ = false;
}

}  // namespace snnsec::snn
