// AlifLayer: adaptive-threshold LIF (ALIF, cf. Bellec et al. 2018 "long
// short-term memory in networks of spiking neurons").
//
// On top of the LIF dynamics, each neuron carries an adaptation trace b
// that is bumped by its own spikes and decays with time constant tau_adapt;
// the effective threshold becomes v_th + beta * b. Firing therefore
// self-limits — a third structural mechanism (beyond V_th and T) that
// shapes both coding and the attack surface, provided for the neuron-model
// extension studies (the paper's future work mentions richer behaviors;
// DIET-SNN [37] tunes leak/threshold jointly).
//
// Discretization (per step, extending lif.hpp's update):
//   b' = rho * b + (1 - rho) * z,   rho = exp(-dt / tau_adapt) ≈ 1 - dt/tau
//   z  = H(vd - (v_th + beta * b))
// BPTT carries dL/db alongside dL/dv and dL/di; the spike's effect on the
// future threshold is differentiated exactly.
#pragma once

#include "nn/layer.hpp"
#include "snn/lif.hpp"

namespace snnsec::snn {

struct AlifParameters {
  LifParameters lif;
  float beta = 1.0f;        ///< threshold boost per unit adaptation
  float rho = 0.9f;         ///< adaptation decay factor per step
  void validate() const;
};

/// One forward Euler step of the ALIF dynamics over a population (flat
/// arrays of length n), the adaptive-threshold analogue of lif_step. Writes
/// spikes into z_out, the pre-reset membrane into v_decayed_out, and the
/// PRE-update adaptation trace (the value that entered the threshold) into
/// b0_out — BPTT needs it. Updates state_i/state_v/state_b in place.
/// Shared by AlifLayer::forward and AnytimeRunner's kAlif stage so both
/// paths run the identical arithmetic (the bit-identity contract).
void alif_step(const AlifParameters& p, std::int64_t n, const float* x,
               float* state_i, float* state_v, float* state_b, float* z_out,
               float* v_decayed_out, float* b0_out);

class AlifLayer final : public nn::Layer {
 public:
  AlifLayer(std::int64_t time_steps, AlifParameters params,
            Surrogate surrogate);

  tensor::Tensor forward(const tensor::Tensor& x, nn::Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "AlifLayer"; }
  void clear_cache() override;

  std::int64_t time_steps() const { return time_steps_; }
  const AlifParameters& params() const { return params_; }
  double last_spike_rate() const { return last_spike_rate_; }

 private:
  std::int64_t time_steps_;
  AlifParameters params_;
  Surrogate surrogate_;

  tensor::Tensor v_decayed_;   // [T*N, F...]
  tensor::Tensor spikes_;      // [T*N, F...]
  tensor::Tensor adaptation_;  // b BEFORE the step's update, per t
  std::int64_t per_step_ = 0;
  bool have_cache_ = false;
  double last_spike_rate_ = 0.0;
};

}  // namespace snnsec::snn
