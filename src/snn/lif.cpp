// SNNSEC_HOT — steady-state kernel file: naked heap allocation and
// container growth are forbidden here (snnsec_lint snnsec-hot-alloc);
// scratch memory comes from util::Workspace so warmed-up runs are
// zero-alloc (asserted by bench_runner's operator-new hook).
#include "snn/lif.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace snnsec::snn {

void LifParameters::validate() const {
  SNNSEC_CHECK(dt > 0.0f, "LifParameters: dt must be positive");
  const float fa = a();
  const float fb = b();
  SNNSEC_CHECK(fa > 0.0f && fa <= 1.0f,
               "LifParameters: unstable membrane factor a=" << fa
                   << " (need 0 < dt*tau_mem_inv <= 1)");
  SNNSEC_CHECK(fb >= 0.0f && fb < 1.0f,
               "LifParameters: unstable synapse factor b=" << fb
                   << " (need 0 <= 1 - dt*tau_syn_inv < 1)");
  SNNSEC_CHECK(v_th > v_leak,
               "LifParameters: v_th (" << v_th << ") must exceed v_leak ("
                                       << v_leak << ")");
}

std::string LifParameters::to_string() const {
  std::ostringstream oss;
  oss << "LIF(v_th=" << v_th << ", tau_syn_inv=" << tau_syn_inv
      << ", tau_mem_inv=" << tau_mem_inv << ", v_leak=" << v_leak
      << ", v_reset=" << v_reset << ", dt=" << dt << ")";
  return oss.str();
}

// The per-element update is branch-free (the spike is a select), so the
// target_clones v3 version vectorizes the whole state update. Both lif_step
// and li_step are the single source of truth for the dynamics: LifLayer's
// unrolled forward and AnytimeRunner's per-slab stepping call the same
// symbols, which is what keeps the two paths bit-identical per machine.
// SNNSEC_HOT entry: the per-neuron membrane update kernel.
SNNSEC_KERNEL_CLONES
void lif_step(const LifParameters& p, std::int64_t n, const float* x,
              float* state_i, float* state_v, float* z_out,
              float* v_decayed_out) {
  const float a = p.a();
  const float b = p.b();
  for (std::int64_t k = 0; k < n; ++k) {
    const float vd = state_v[k] + a * ((p.v_leak - state_v[k]) + state_i[k]);
    const float id = b * state_i[k];
    const float z = vd > p.v_th ? 1.0f : 0.0f;
    z_out[k] = z;
    v_decayed_out[k] = vd;
    state_v[k] = (1.0f - z) * vd + z * p.v_reset;
    state_i[k] = id + x[k];
  }
}

SNNSEC_KERNEL_CLONES
void li_step(const LifParameters& p, std::int64_t n, const float* x,
             float* state_i, float* state_v, float* v_out) {
  const float a = p.a();
  const float b = p.b();
  for (std::int64_t k = 0; k < n; ++k) {
    const float vd = state_v[k] + a * ((p.v_leak - state_v[k]) + state_i[k]);
    const float id = b * state_i[k];
    v_out[k] = vd;
    state_v[k] = vd;
    state_i[k] = id + x[k];
  }
}

}  // namespace snnsec::snn
