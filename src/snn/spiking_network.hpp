// SpikingClassifier: a complete SNN behind the shared Classifier interface.
//
// Pipeline per batch [N, C, H, W]:
//   1. replicate the image T times (time-major [T*N, C, H, W]) — the paper's
//      "observation period in which the SNN receives the same input";
//   2. run the layer stack (encoder LIF -> conv/LIF/pool ... -> linear ->
//      LiReadout), which collapses time and yields logits [N, classes];
//   3. for training/attacks, backprop through the whole unrolled window and
//      (for input gradients) sum the per-step image gradients.
#pragma once

#include <memory>

#include "nn/classifier.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "snn/lif_layer.hpp"

namespace snnsec::snn {

class SpikingClassifier final : public nn::Classifier {
 public:
  /// `net` must map [T*N, C, H, W] -> [N, classes] (i.e. end in LiReadout).
  SpikingClassifier(std::unique_ptr<nn::Sequential> net,
                    std::int64_t time_steps, std::int64_t num_classes,
                    std::string description);

  tensor::Tensor logits(const tensor::Tensor& x) override;
  tensor::Tensor input_gradient(const tensor::Tensor& x,
                                const std::vector<std::int64_t>& labels,
                                double* loss_out) override;
  tensor::Tensor output_gradient(const tensor::Tensor& x,
                                 const tensor::Tensor& cotangent) override;
  double train_batch(const tensor::Tensor& x,
                     const std::vector<std::int64_t>& labels,
                     nn::Optimizer& optimizer) override;
  std::vector<nn::Parameter*> parameters() override;
  std::int64_t num_classes() const override { return num_classes_; }
  std::string describe() const override;

  std::int64_t time_steps() const { return time_steps_; }
  nn::Sequential& net() { return *net_; }

  /// Mean spike rate of every LifLayer in the stack after the most recent
  /// forward — dead (all-zero) or saturated layers explain non-learnable
  /// (V_th, T) grid cells.
  std::vector<double> spike_rates() const;

  /// Run one probed forward on `x` and return per-LIF-layer activity
  /// statistics (firing rate, spike counts, silent/saturated fractions,
  /// membrane-potential histograms). Layers are labeled "lif0".."lifK" in
  /// stack order. The probe machinery is disarmed again before returning,
  /// so subsequent forwards pay no extra cost.
  std::vector<obs::ActivityStats> collect_activity(const tensor::Tensor& x);

  /// Replicate [N, ...] into time-major [T*N, ...].
  static tensor::Tensor replicate_over_time(const tensor::Tensor& x,
                                            std::int64_t time_steps);
  /// Sum time-major [T*N, ...] back to [N, ...].
  static tensor::Tensor sum_over_time(const tensor::Tensor& x,
                                      std::int64_t time_steps);

 private:
  std::unique_ptr<nn::Sequential> net_;
  nn::SoftmaxCrossEntropy loss_;
  std::int64_t time_steps_;
  std::int64_t num_classes_;
  std::string description_;
};

}  // namespace snnsec::snn
