// SNNSEC_HOT — steady-state kernel file: naked heap allocation and
// container growth are forbidden here (snnsec_lint snnsec-hot-alloc);
// scratch memory comes from util::Workspace so warmed-up runs are
// zero-alloc (asserted by bench_runner's operator-new hook).
#include "snn/lif_layer.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <vector>

#include "util/checked.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace snnsec::snn {

using tensor::Shape;
using tensor::Tensor;

LifLayer::LifLayer(std::int64_t time_steps, LifParameters params,
                   Surrogate surrogate)
    : time_steps_(time_steps), params_(params), surrogate_(surrogate) {
  SNNSEC_CHECK(time_steps_ > 0, "LifLayer: time_steps must be positive");
  params_.validate();
}

Tensor LifLayer::forward(const Tensor& x, nn::Mode mode) {
  const std::int64_t total = x.dim(0);
  SNNSEC_CHECK(total % time_steps_ == 0,
               name() << ": dim0 " << total << " not divisible by T="
                      << time_steps_);
  const std::int64_t per_step = x.numel() / time_steps_;  // N * features

  Tensor z(x.shape());
  Tensor vd(x.shape());
  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  float* state_i = ws.alloc<float>(static_cast<std::size_t>(per_step));
  float* state_v = ws.alloc<float>(static_cast<std::size_t>(per_step));
  std::fill(state_i, state_i + per_step, 0.0f);
  std::fill(state_v, state_v + per_step, 0.0f);

  const float* px = x.data();
  float* pz = z.data();
  float* pvd = vd.data();
  // Parallelize across neurons: each chunk of the population evolves
  // independently through all T steps, accumulating its share of the spike
  // count while the rows are still hot instead of re-reading z serially.
  std::atomic<double> spike_sum{0.0};
  util::parallel_for_chunked(0, per_step, [&](std::int64_t lo, std::int64_t hi) {
    double local_sum = 0.0;
    for (std::int64_t t = 0; t < time_steps_; ++t) {
      const std::int64_t off = t * per_step;
      lif_step(params_, hi - lo, px + off + lo, state_i + lo, state_v + lo,
               pz + off + lo, pvd + off + lo);
      const float* zrow = pz + off + lo;
      for (std::int64_t k = 0; k < hi - lo; ++k) local_sum += zrow[k];
    }
    spike_sum.fetch_add(local_sum, std::memory_order_relaxed);
  });
  if (fault_.any()) {
    // Faults rewrite z, so the fused count is stale: redo it on the (rare,
    // evaluation-only) fault path.
    apply_spike_fault(z, per_step);
    double faulted_sum = 0.0;
    for (std::int64_t i = 0; i < z.numel(); ++i) faulted_sum += pz[i];
    spike_sum.store(faulted_sum, std::memory_order_relaxed);
  }
  last_spike_rate_ =
      spike_sum.load(std::memory_order_relaxed) / static_cast<double>(z.numel());
  last_output_numel_ = z.numel();
  if (probe_) collect_activity_stats(z, vd, per_step);

  if (nn::cache_enabled(mode)) {
    v_decayed_ = std::move(vd);
    spikes_ = z;  // copy; z is also the return value
    cached_rows_ = per_step;
    have_cache_ = true;
  }
  return z;
}

Tensor LifLayer::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, name() << "::backward without cached forward");
  SNNSEC_CHECK(grad_out.shape() == spikes_.shape(),
               name() << "::backward: grad shape "
                      << grad_out.shape().to_string() << " != forward shape "
                      << spikes_.shape().to_string());
  const std::int64_t per_step = cached_rows_;
  SNNSEC_ASSERT_SHAPE(v_decayed_, spikes_.shape());
  SNNSEC_DCHECK(per_step * time_steps_ == spikes_.numel(),
                name() << ": cached rows " << per_step
                       << " inconsistent with cache of "
                       << spikes_.numel() << " elements");
  const float a = params_.a();
  const float b = params_.b();
  const float v_th = params_.v_th;
  const float v_reset = params_.v_reset;
  const Surrogate sg = surrogate_;

  Tensor dx(grad_out.shape());
  const float* gz = grad_out.data();
  const float* pvd = v_decayed_.data();
  const float* pz = spikes_.data();
  float* pdx = dx.data();

  util::parallel_for_chunked(0, per_step, [&](std::int64_t lo, std::int64_t hi) {
    const std::int64_t len = hi - lo;
    // Carry buffers come from the worker thread's arena — BPTT is invoked
    // once per training batch and per attack step, so per-call vectors here
    // were a steady malloc/free drumbeat.
    util::Workspace& tws = util::Workspace::local();
    util::Workspace::Scope chunk_scope(tws);
    float* gv = tws.alloc<float>(static_cast<std::size_t>(len));
    float* gi = tws.alloc<float>(static_cast<std::size_t>(len));
    std::fill(gv, gv + len, 0.0f);
    std::fill(gi, gi + len, 0.0f);
    for (std::int64_t t = time_steps_ - 1; t >= 0; --t) {
      const std::int64_t off = t * per_step + lo;
      for (std::int64_t k = 0; k < len; ++k) {
        const float vd = pvd[off + k];
        const float z = pz[off + k];
        const float carry_v = gv[k];
        const float carry_i = gi[k];
        // dL/dx_t: x enters i_t directly.
        pdx[off + k] = carry_i;
        // Spike gradient: external + reset gate contribution.
        const float tdz = gz[off + k] + carry_v * (v_reset - vd);
        const float gvd = carry_v * (1.0f - z) + tdz * sg.grad(vd - v_th);
        gv[k] = gvd * (1.0f - a);
        gi[k] = gvd * a + carry_i * b;
      }
    }
  });
  return dx;
}

void LifLayer::collect_activity_stats(const Tensor& z, const Tensor& vd,
                                      std::int64_t per_step) {
  obs::ActivityStats stats;
  stats.neuron_steps = z.numel();
  stats.neurons = per_step;
  stats.spike_count =
      static_cast<std::int64_t>(last_spike_rate_ *
                                    static_cast<double>(z.numel()) +
                                0.5);
  stats.firing_rate = last_spike_rate_;

  // Per-neuron any/all reductions over the time axis: a neuron here is one
  // (sample, feature) slot followed through the whole window.
  std::vector<std::uint8_t> fired(static_cast<std::size_t>(per_step), 0);
  std::vector<std::uint8_t> always(static_cast<std::size_t>(per_step), 1);
  const float* pz = z.data();
  for (std::int64_t t = 0; t < time_steps_; ++t) {
    const float* row = pz + t * per_step;
    for (std::int64_t k = 0; k < per_step; ++k) {
      const bool spiked = row[k] > 0.5f;
      fired[static_cast<std::size_t>(k)] |= spiked;
      always[static_cast<std::size_t>(k)] &= spiked;
    }
  }
  std::int64_t silent = 0;
  std::int64_t saturated = 0;
  for (std::int64_t k = 0; k < per_step; ++k) {
    if (!fired[static_cast<std::size_t>(k)]) ++silent;
    if (always[static_cast<std::size_t>(k)]) ++saturated;
  }
  stats.silent_fraction =
      static_cast<double>(silent) / static_cast<double>(per_step);
  stats.saturated_fraction =
      static_cast<double>(saturated) / static_cast<double>(per_step);

  // Pre-reset membrane-potential distribution, centered on the threshold
  // so under/over-threshold mass is visible per (V_th, T) cell.
  stats.v_spec.lo = params_.v_reset - 1.0;
  stats.v_spec.hi = params_.v_th + 1.0;
  // NOLINTNEXTLINE(snnsec-hot-alloc): probe path — runs only when activity collection is armed, never in steady-state forwards
  stats.v_hist.assign(static_cast<std::size_t>(stats.v_spec.buckets), 0);
  const float* pv = vd.data();
  double v_sum = 0.0;
  double v_min = pv[0];
  double v_max = pv[0];
  for (std::int64_t i = 0; i < vd.numel(); ++i) {
    const double v = pv[i];
    v_sum += v;
    if (v < v_min) v_min = v;
    if (v > v_max) v_max = v;
    ++stats.v_hist[static_cast<std::size_t>(stats.v_spec.index(v))];
  }
  stats.v_mean = v_sum / static_cast<double>(vd.numel());
  stats.v_min = v_min;
  stats.v_max = v_max;
  last_activity_ = std::move(stats);
}

void SpikeFault::validate() const {
  SNNSEC_CHECK(drop_prob >= 0.0 && drop_prob <= 1.0,
               "SpikeFault: drop_prob outside [0, 1]");
  SNNSEC_CHECK(jitter_prob >= 0.0 && jitter_prob <= 1.0,
               "SpikeFault: jitter_prob outside [0, 1]");
  SNNSEC_CHECK(stuck_zero_fraction >= 0.0 && stuck_zero_fraction <= 1.0,
               "SpikeFault: stuck_zero_fraction outside [0, 1]");
  SNNSEC_CHECK(stuck_one_fraction >= 0.0 && stuck_one_fraction <= 1.0,
               "SpikeFault: stuck_one_fraction outside [0, 1]");
  SNNSEC_CHECK(stuck_zero_fraction + stuck_one_fraction <= 1.0,
               "SpikeFault: stuck fractions sum past 1");
}

void LifLayer::set_spike_fault(const SpikeFault& fault) {
  fault.validate();
  fault_ = fault;
}

void LifLayer::apply_spike_fault(Tensor& z, std::int64_t per_step) const {
  // Re-seed per forward so repeated evaluations of the same input under the
  // same fault spec are bit-identical. Slot-major iteration keeps the draw
  // order independent of the thread pool (this pass is single-threaded; it
  // only runs on the fault-evaluation path).
  util::Rng rng(fault_.seed);
  util::Rng slot_rng = rng.fork("slots");
  // 0 = healthy, 1 = stuck-at-0 (dead neuron), 2 = stuck-at-1.
  std::vector<std::uint8_t> stuck(static_cast<std::size_t>(per_step), 0);
  for (std::int64_t k = 0; k < per_step; ++k) {
    if (fault_.stuck_zero_fraction > 0.0 &&
        slot_rng.bernoulli(fault_.stuck_zero_fraction))
      stuck[static_cast<std::size_t>(k)] = 1;
    else if (fault_.stuck_one_fraction > 0.0 &&
             slot_rng.bernoulli(fault_.stuck_one_fraction))
      stuck[static_cast<std::size_t>(k)] = 2;
  }

  const Tensor zin = z;  // pre-fault spikes
  z.zero_();
  const float* pin = zin.data();
  float* pz = z.data();
  util::Rng spike_rng = rng.fork("spikes");
  for (std::int64_t k = 0; k < per_step; ++k) {
    const std::uint8_t s = stuck[static_cast<std::size_t>(k)];
    if (s == 1) continue;  // dead: stays all-zero
    if (s == 2) {
      for (std::int64_t t = 0; t < time_steps_; ++t)
        pz[t * per_step + k] = 1.0f;
      continue;
    }
    for (std::int64_t t = 0; t < time_steps_; ++t) {
      if (pin[t * per_step + k] <= 0.5f) continue;
      if (fault_.drop_prob > 0.0 && spike_rng.bernoulli(fault_.drop_prob))
        continue;
      std::int64_t tt = t;
      if (fault_.jitter_prob > 0.0 &&
          spike_rng.bernoulli(fault_.jitter_prob) && t + 1 < time_steps_)
        tt = t + 1;  // delayed spike; merges if the next step also fires
      pz[tt * per_step + k] = 1.0f;
    }
  }
}

std::string LifLayer::name() const {
  std::ostringstream oss;
  oss << "LifLayer(T=" << time_steps_ << ", v_th=" << params_.v_th << ", "
      << surrogate_.to_string() << ")";
  return oss.str();
}

void LifLayer::clear_cache() {
  v_decayed_ = Tensor();
  spikes_ = Tensor();
  have_cache_ = false;
}

}  // namespace snnsec::snn
