// Model checkpointing: persist a trained spiking LeNet together with the
// architecture and structural parameters needed to rebuild it — so a tuned
// sweet-spot model ("trustworthy SNN") can be shipped and reloaded without
// retraining.
//
// File layout: a tensor archive (tensor/serialize.hpp) with
//   "meta/format" — checkpoint format version, the writer's config hash and
//                   an FNV-1a digest over every payload tensor (corruption/
//                   staleness detection; see save_checkpoint)
//   "meta/arch"   — LenetSpec fields
//   "meta/snn"    — SnnConfig fields (v_th, T, taus, surrogate, gains, ...)
//   "p000".."pNN" — parameter tensors in Sequential order
//
// All writers are atomic (write-to-temp + fsync + rename) and all loaders
// validate magic/version/hash/digest, so a crashed or corrupted checkpoint
// is rejected — with a warning, via the try_* entry points — instead of
// being deserialized into garbage weights.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "snn/spiking_lenet.hpp"

namespace snnsec::snn {

/// Atomically write a validated checkpoint: `items` plus a "meta/format"
/// record holding the format version, `config_hash` (the caller's
/// fingerprint of everything that determined the payload) and an FNV-1a
/// digest of every payload tensor's bytes.
void save_checkpoint(const std::string& path,
                     const std::map<std::string, tensor::Tensor>& items,
                     std::uint64_t config_hash);

/// Load a checkpoint written by save_checkpoint and return the payload
/// (without "meta/format"), or std::nullopt — with a logged warning — when
/// the file is truncated, corrupt (digest mismatch), from a different
/// format version, or written under a different `config_hash`. A missing
/// file returns nullopt silently.
std::optional<std::map<std::string, tensor::Tensor>> try_load_checkpoint(
    const std::string& path, std::uint64_t config_hash);

/// FNV-1a digest over names, shapes and raw bytes of every tensor in
/// `items` (the payload digest stored by save_checkpoint).
std::uint64_t checkpoint_digest(
    const std::map<std::string, tensor::Tensor>& items);

/// Serialize `model`, which must have been produced by build_spiking_lenet
/// with (`arch`, `config`).
void save_spiking_lenet(const std::string& path, SpikingClassifier& model,
                        const nn::LenetSpec& arch, const SnnConfig& config);

/// Fingerprint of the (arch, config) metadata that determines a spiking
/// LeNet checkpoint's layout — the hash save_spiking_lenet stamps into the
/// format record, exposed so caches can key warm models by structural
/// configuration (Vth, T, taus, encoder, ...) without reloading files.
std::uint64_t spiking_lenet_config_hash(const nn::LenetSpec& arch,
                                        const SnnConfig& config);

/// A fully validated spiking-LeNet checkpoint: the archive payload (format
/// record stripped) plus its decoded metadata. Building a network from it
/// is a pure in-memory operation, so one loaded payload can stamp out any
/// number of independent model replicas (serve workers hold one each).
struct CheckpointPayload {
  std::map<std::string, tensor::Tensor> archive;
  nn::LenetSpec arch;
  SnnConfig config;
  std::uint64_t config_hash = 0;  ///< spiking_lenet_config_hash(arch, config)
  std::uint64_t digest = 0;       ///< payload digest (content identity)
};

/// Read `path` and run the full validation chain (format version, payload
/// digest, config-hash self-consistency, metadata presence) without
/// constructing a network. Throws util::Error on any mismatch.
CheckpointPayload load_validated_payload(const std::string& path);

/// Build a fresh SpikingClassifier from a validated payload and restore its
/// weights (positional, guarded by the stored architecture fingerprint).
/// `label` names the checkpoint in error messages. Each call returns an
/// independent replica — no state is shared between replicas.
std::unique_ptr<SpikingClassifier> rebuild_spiking_lenet(
    const CheckpointPayload& payload, const std::string& label);

struct LoadedModel {
  std::unique_ptr<SpikingClassifier> model;
  nn::LenetSpec arch;
  SnnConfig config;
};

/// Rebuild the network from the stored architecture/config and restore its
/// weights. Throws util::Error on format or shape mismatches.
LoadedModel load_spiking_lenet(const std::string& path);

/// load_spiking_lenet that logs a warning and returns std::nullopt instead
/// of throwing when the file is missing, truncated or corrupt — the entry
/// point for cache-style loads where the fallback is retraining.
std::optional<LoadedModel> try_load_spiking_lenet(const std::string& path);

}  // namespace snnsec::snn
