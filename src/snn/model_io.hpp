// Model checkpointing: persist a trained spiking LeNet together with the
// architecture and structural parameters needed to rebuild it — so a tuned
// sweet-spot model ("trustworthy SNN") can be shipped and reloaded without
// retraining.
//
// File layout: a tensor archive (tensor/serialize.hpp) with
//   "meta/arch"   — LenetSpec fields
//   "meta/snn"    — SnnConfig fields (v_th, T, taus, surrogate, gains, ...)
//   "p000".."pNN" — parameter tensors in Sequential order
#pragma once

#include <memory>
#include <string>

#include "snn/spiking_lenet.hpp"

namespace snnsec::snn {

/// Serialize `model`, which must have been produced by build_spiking_lenet
/// with (`arch`, `config`).
void save_spiking_lenet(const std::string& path, SpikingClassifier& model,
                        const nn::LenetSpec& arch, const SnnConfig& config);

struct LoadedModel {
  std::unique_ptr<SpikingClassifier> model;
  nn::LenetSpec arch;
  SnnConfig config;
};

/// Rebuild the network from the stored architecture/config and restore its
/// weights. Throws util::Error on format or shape mismatches.
LoadedModel load_spiking_lenet(const std::string& path);

}  // namespace snnsec::snn
