// AnytimeRunner: incremental (per-timestep) forward pass for a
// SpikingClassifier, the engine behind deadline-aware "anytime" serving.
//
// The one-shot SpikingClassifier::logits() unrolls the whole observation
// window T before decoding. For serving, the time window is a structural
// knob we can cut short: the LiReadout decode is a running max over the
// membrane trace, so logits accumulated after t steps are exactly the
// logits the full forward would produce if the window were t — a request
// with a deadline can stop at t < T and still return a well-defined
// (truncated) prediction.
//
// The runner walks the model's Sequential stack once at construction and
// compiles it into a flat stage table (scale / conv / pool / flatten /
// linear are stateless per step; LIF / ALIF / LI-readout carry explicit
// per-neuron state across step() calls). All activations and state live in
// persistent per-stage tensors that are reallocated only when the batch
// geometry changes, so a warm runner performs zero heap allocations per
// step — the property bench_serve asserts with its operator-new hook.
//
// Bit-identity with the one-shot path: every stage reuses the exact
// per-step math of the corresponding layer (lif_step / alif_step / li_step
// / the layers' own forward_into entry points), and each conv/linear runs
// whatever kernel the layer resolved at build time — dense GEMM or the
// event-accumulate kernel — identically in both paths; the sticky
// resolution rule (DESIGN.md §14) guarantees the choice never differs
// between one-shot and stepped execution. The LIF recurrences are
// elementwise and the event kernel computes each output row independently,
// so stepping time outside the layers reorders no floating-point
// operation. Spike slabs feeding an event-resolved Linear are compressed
// ONCE where they are produced (the LIF/ALIF stage) and handed over as
// event lists; building them from the identical slab values is what keeps
// this bit-identical to the Linear's own internal build.
// tests/test_serve_anytime.cpp checks logits()@t==T against
// SpikingClassifier::logits() bit-for-bit.
//
// Not supported (throws at construction / begin): Poisson encoders (fresh
// RNG per forward — a step-by-step replay would not reproduce the one-shot
// spike trains) and, by default, armed SpikeFaults (the fault post-pass
// lives in LifLayer::forward, which this runner bypasses). Chaos mode —
// AnytimeRunner(model, /*allow_faults=*/true) — lifts the fault rejection
// and replays each armed layer's SpikeFault as a per-step post-pass with
// the exact per-slot semantics of LifLayer::apply_spike_fault (identical
// stuck masks; drop/jitter gated per spike; one-step jitter carried into
// the next slab). Faulted runs are deterministic per (seed, input) but NOT
// bit-identical to the one-shot faulted forward: the one-shot pass draws
// drop/jitter slot-major over the whole window, while online stepping must
// draw time-major. The healthy path is untouched — fault state is only
// allocated when a begin() observes an armed fault.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/sketch.hpp"
#include "snn/lif_layer.hpp"
#include "snn/spiking_network.hpp"
#include "tensor/spike_events.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace snnsec::snn {

class AnytimeRunner {
 public:
  /// Compiles `model`'s layer stack into a stage table. The model must be
  /// a constant-current-encoded spiking stack ending in LiReadout; throws
  /// util::Error otherwise. The runner borrows the model (weights are read
  /// through the live layers each step) — it must outlive the runner.
  /// `allow_faults` opts into chaos mode: armed LifLayer spike faults are
  /// replayed per step instead of rejected (see the header comment).
  explicit AnytimeRunner(SpikingClassifier& model, bool allow_faults = false);

  /// Start a new request: latch the input batch [N, C, H, W] and reset all
  /// neuron state. Rejects armed spike faults on any LIF layer unless the
  /// runner was constructed with allow_faults; with it, each armed layer's
  /// fault spec is latched here for the lifetime of the request.
  void begin(const tensor::Tensor& x);

  bool allow_faults() const { return allow_faults_; }

  /// Advance the whole stack by one time step and fold the readout trace
  /// into the running-max logits. Requires begin() and !done().
  void step();

  /// Accumulated logits [N, classes] after steps_done() steps. At
  /// steps_done() == time_steps() this is bit-identical to the one-shot
  /// SpikingClassifier::logits(). Rows are -inf before the first step.
  const tensor::Tensor& logits() const { return logits_; }

  std::int64_t steps_done() const { return t_; }
  bool done() const { return t_ >= time_steps_; }
  std::int64_t time_steps() const { return time_steps_; }
  /// Batch size of the current request (0 before the first begin()).
  std::int64_t batch() const { return batch_; }

  /// Convenience: begin(x) then step() until done() or `max_steps` steps
  /// (0 = full window). Returns the accumulated logits.
  const tensor::Tensor& run(const tensor::Tensor& x,
                            std::int64_t max_steps = 0);

  /// Spiking layers in stack order ("lif0".."lifK" with each layer's Vth) —
  /// the geometry a SketchAccumulator must be configured with to attach.
  const std::vector<obs::SketchLayerInfo>& sketch_layers() const {
    return sketch_layers_;
  }

  /// Attach (or with nullptr detach) a telemetry sketch. While attached,
  /// begin() opens a batch on it and every step() folds each spiking
  /// layer's (spikes, pre-reset membrane) slab into it, in stack-then-time
  /// order — the bit-identity contract in obs/sketch.hpp. The accumulator
  /// must already be configured with sketch_layers(); it is borrowed, not
  /// owned. Attaching changes no arithmetic on the forward path.
  void set_sketch(obs::SketchAccumulator* sketch);
  obs::SketchAccumulator* sketch() const { return sketch_; }

 private:
  enum class StageKind : std::uint8_t {
    kScale,
    kLif,
    kAlif,
    kConv,
    kAvgPool,
    kFlatten,
    kLinear,
    kReadout,
  };

  struct Stage {
    StageKind kind;
    nn::Layer* layer = nullptr;
    int sketch_index = -1;   ///< position in sketch_layers_ (LIF/ALIF only)
    tensor::Tensor out;      ///< this stage's activation for the current step
    tensor::Tensor state_i;  ///< synaptic current (LIF/ALIF/readout)
    tensor::Tensor state_v;  ///< membrane potential (LIF/ALIF/readout)
    tensor::Tensor state_b;  ///< adaptation trace (ALIF only)
    tensor::Tensor scratch;  ///< pre-reset membrane (v_decayed) sink
    tensor::Tensor scratch_b;  ///< pre-update adaptation (b0) sink (ALIF)
    // Event handoff (wired at construction, never data-dependent): a
    // spiking stage with build_events compresses its slab once per step;
    // the consuming Linear stage reads it via event_source. The EventRows
    // views workspace memory scoped to the current step() call only.
    bool build_events = false;
    int event_source = -1;  ///< producer stage index (kLinear consumers)
    tensor::EventRows events;
    // Chaos mode (allow_faults) only — all empty on the healthy path.
    SpikeFault fault;               ///< latched at begin() (LIF stages)
    bool fault_active = false;      ///< fault.any() as of the last begin()
    std::vector<std::uint8_t> stuck;  ///< per-slot stuck mask (0/1/2)
    tensor::Tensor carry;           ///< spikes jittered into the next step
    util::Rng fault_rng{0};         ///< drop/jitter stream for this request
  };

  void apply_stage_fault(Stage& s, std::int64_t n);

  SpikingClassifier& model_;
  std::int64_t time_steps_;
  std::int64_t num_classes_;
  std::vector<Stage> stages_;
  std::vector<obs::SketchLayerInfo> sketch_layers_;
  obs::SketchAccumulator* sketch_ = nullptr;  ///< borrowed; may be null
  tensor::Tensor input_;   ///< latched request batch [N, C, H, W]
  tensor::Tensor logits_;  ///< running-max decode [N, classes]
  std::int64_t batch_ = 0;
  std::int64_t t_ = 0;
  bool began_ = false;
  bool allow_faults_ = false;
};

}  // namespace snnsec::snn
