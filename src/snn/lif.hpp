// Leaky-Integrate-and-Fire neuron dynamics (Norse-compatible discretization).
//
// State per neuron: synaptic current i, membrane potential v. One Euler
// step with time step dt:
//
//   v_decayed = v + dt*tau_mem_inv * ((v_leak - v) + i)
//   i_decayed = (1 - dt*tau_syn_inv) * i
//   z         = H(v_decayed - v_th)            (spike)
//   v'        = (1 - z) * v_decayed + z * v_reset
//   i'        = i_decayed + x                  (input current enters here)
//
// This matches norse.torch.functional.lif_step: the input current injected
// at step t first influences the membrane at step t+1. The firing threshold
// v_th is the structural parameter the paper sweeps; the observation window
// T lives one level up (LifLayer / the network).
#pragma once

#include <cstdint>
#include <string>

#include "snn/surrogate.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::snn {

struct LifParameters {
  float tau_syn_inv = 200.0f;  ///< 1/tau_syn  [1/s]
  float tau_mem_inv = 100.0f;  ///< 1/tau_mem  [1/s]
  float v_th = 1.0f;           ///< firing threshold (paper's V_th)
  float v_leak = 0.0f;
  float v_reset = 0.0f;
  float dt = 1e-3f;

  /// Membrane integration factor a = dt * tau_mem_inv.
  float a() const { return dt * tau_mem_inv; }
  /// Synaptic decay factor b = 1 - dt * tau_syn_inv.
  float b() const { return 1.0f - dt * tau_syn_inv; }

  /// Throws util::Error when the discretization is unstable (a or b outside
  /// (0, 1]) or the threshold is non-positive.
  void validate() const;

  std::string to_string() const;
};

/// Dense per-neuron state for a population of `size` neurons.
struct LifState {
  explicit LifState(std::int64_t size)
      : i(tensor::Shape{size}), v(tensor::Shape{size}) {}
  tensor::Tensor i;
  tensor::Tensor v;
};

/// One forward Euler step over a population (flat arrays of length n).
/// Writes spikes into `z_out` and the pre-reset membrane into
/// `v_decayed_out` (needed by BPTT); updates state in place.
void lif_step(const LifParameters& p, std::int64_t n, const float* x,
              float* state_i, float* state_v, float* z_out,
              float* v_decayed_out);

/// Leaky-integrator (non-spiking readout) step: same dynamics without
/// threshold/reset. Writes the membrane trace into v_out.
void li_step(const LifParameters& p, std::int64_t n, const float* x,
             float* state_i, float* state_v, float* v_out);

}  // namespace snnsec::snn
