#include "snn/spiking_lenet.hpp"

#include <sstream>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "snn/li_readout.hpp"

namespace snnsec::snn {

LifParameters SnnConfig::lif_params() const {
  LifParameters p = neuron;
  p.v_th = static_cast<float>(v_th);
  return p;
}

void SnnConfig::validate() const {
  SNNSEC_CHECK(time_steps > 0, "SnnConfig: time_steps must be positive");
  SNNSEC_CHECK(v_th > 0.0, "SnnConfig: v_th must be positive");
  SNNSEC_CHECK(weight_gain > 0.0, "SnnConfig: weight_gain must be positive");
  lif_params().validate();
}

std::unique_ptr<SpikingClassifier> build_spiking_lenet(
    const nn::LenetSpec& spec, const SnnConfig& config, util::Rng& rng) {
  spec.validate();
  config.validate();
  const std::int64_t t = config.time_steps;
  const LifParameters lif = config.lif_params();
  LifParameters encoder_lif = lif;
  if (!config.encoder_uses_vth) encoder_lif.v_th = config.neuron.v_th;

  // Hidden-layer spiking nonlinearity factory (LIF or ALIF).
  auto make_spiking = [&](void) -> nn::LayerPtr {
    if (config.neuron_model == NeuronModel::kAlif) {
      AlifParameters ap;
      ap.lif = lif;
      ap.beta = config.alif_beta;
      ap.rho = config.alif_rho;
      return std::make_unique<AlifLayer>(t, ap, config.surrogate);
    }
    return std::make_unique<LifLayer>(t, lif, config.surrogate);
  };

  auto net = std::make_unique<nn::Sequential>();
  // Kernel resolution is declared here from each GEMM operand's ROLE in
  // the architecture — never probed from runtime data — and is sticky for
  // the layer's lifetime (DESIGN.md §14). Two roles appear in this stack:
  //   - spike slabs (the encoder's output feeding conv1, the hidden
  //     spiking layers' slabs feeding fc1/fc2): binary and mostly silent
  //     at SNN operating points -> the event kernel;
  //   - pooled rate maps (AvgPool2d output feeding conv2/conv3): 2x2
  //     averages of spikes are real-valued and mostly NONZERO by
  //     construction (one firing site lights the whole window), so they
  //     keep the dense blocked kernel — declaring them "sparse" because a
  //     probe once saw zeros is exactly the data-dependent dispatch this
  //     design forbids.
  auto spike_fed_conv = [&net] {
    static_cast<nn::Conv2d&>(net->layer(net->size() - 1))
        .set_input_hint(tensor::SparsityHint::kEvents);
  };
  auto spike_fed_fc = [&net] {
    static_cast<nn::Linear&>(net->layer(net->size() - 1))
        .set_input_hint(tensor::SparsityHint::kEvents);
  };
  // Input-current gain (Norse-style input normalization stand-in).
  // NOLINTNEXTLINE(snnsec-float-eq): gain of exactly 1 (the default literal) elides the Scale layer
  if (config.input_gain != 1.0)
    net->emplace<nn::Scale>(static_cast<float>(config.input_gain));
  // Encoder.
  if (config.encoder == EncoderKind::kConstantCurrentLif) {
    net->add(make_constant_current_encoder(t, encoder_lif, config.surrogate));
  } else {
    net->emplace<PoissonEncoder>(t, util::Rng(config.poisson_seed));
  }
  // conv1 -> LIF -> pool
  net->emplace<nn::Conv2d>(
      nn::Conv2dSpec{spec.in_channels, spec.conv1_channels, 5, 1, 2}, rng);
  spike_fed_conv();
  net->add(make_spiking());
  net->emplace<nn::AvgPool2d>(2);
  // conv2 -> LIF -> pool (input: pooled rate map -> dense by role)
  net->emplace<nn::Conv2d>(
      nn::Conv2dSpec{spec.conv1_channels, spec.conv2_channels, 5, 1, 2}, rng);
  net->add(make_spiking());
  net->emplace<nn::AvgPool2d>(2);
  // conv3 -> LIF (input: pooled rate map -> dense by role)
  net->emplace<nn::Conv2d>(
      nn::Conv2dSpec{spec.conv2_channels, spec.conv3_channels, 3, 1, 1}, rng);
  net->add(make_spiking());
  // classifier head
  net->emplace<nn::Flatten>();
  const std::int64_t flat =
      spec.conv3_channels * spec.pooled_size() * spec.pooled_size();
  net->emplace<nn::Linear>(flat, spec.fc_hidden, rng);
  spike_fed_fc();
  net->add(make_spiking());
  net->emplace<nn::Linear>(spec.fc_hidden, spec.num_classes, rng);
  spike_fed_fc();
  net->emplace<LiReadout>(t, lif);

  // Rescale weight inits so synaptic currents reach the threshold's working
  // range (see SnnConfig::weight_gain).
  // NOLINTNEXTLINE(snnsec-float-eq): gain of exactly 1 (the default literal) elides the weight rescale
  if (config.weight_gain != 1.0) {
    for (nn::Parameter* p : net->parameters())
      if (p->name == "weight")
        p->value.mul_scalar_(static_cast<float>(config.weight_gain));
  }

  std::ostringstream desc;
  desc << "spiking LeNet (3 conv + 2 fc, " << lif.to_string() << ", "
       << config.surrogate.to_string() << ")";
  return std::make_unique<SpikingClassifier>(std::move(net), t,
                                             spec.num_classes, desc.str());
}

}  // namespace snnsec::snn
