// LiReadout: non-spiking leaky-integrator output stage with max-over-time
// decoding (Norse's LI readout + torch.max(voltages, dim=0) pattern).
//
// Input : [T*N, C] per-class currents (output of the last linear layer).
// Output: [N, C] logits — logits[n,c] = max over t of the membrane trace.
// Backward routes each logit's gradient to its argmax step and then runs
// the linear leaky-integrator recurrence in reverse.
#pragma once

#include "nn/layer.hpp"
#include "snn/lif.hpp"

namespace snnsec::snn {

class LiReadout final : public nn::Layer {
 public:
  LiReadout(std::int64_t time_steps, LifParameters params);

  tensor::Tensor forward(const tensor::Tensor& x, nn::Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "LiReadout"; }
  void clear_cache() override;

  std::int64_t time_steps() const { return time_steps_; }
  const LifParameters& params() const { return params_; }

  /// Full membrane trace [T*N, C] of the most recent cached forward
  /// (diagnostics / decoding ablations).
  const tensor::Tensor& last_trace() const { return trace_; }

 private:
  std::int64_t time_steps_;
  LifParameters params_;

  tensor::Tensor trace_;                  // [T*N, C]
  std::vector<std::int64_t> argmax_t_;    // [N*C] winning time step
  std::int64_t per_step_ = 0;             // N*C
  bool have_cache_ = false;
};

}  // namespace snnsec::snn
