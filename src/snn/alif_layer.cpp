// SNNSEC_HOT — steady-state kernel file: naked heap allocation and
// container growth are forbidden here (snnsec_lint snnsec-hot-alloc);
// scratch memory comes from util::Workspace so warmed-up runs are
// zero-alloc (asserted by bench_runner's operator-new hook).
#include "snn/alif_layer.hpp"

#include <algorithm>
#include <sstream>

#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace snnsec::snn {

using tensor::Tensor;

void AlifParameters::validate() const {
  lif.validate();
  SNNSEC_CHECK(beta >= 0.0f, "AlifParameters: negative beta");
  SNNSEC_CHECK(rho >= 0.0f && rho < 1.0f,
               "AlifParameters: rho must be in [0, 1)");
}

// Branch-free per-element update (the spike is a select), vectorized by the
// target_clones v3 version. Single source of truth for the ALIF dynamics:
// the unrolled forward below and AnytimeRunner's kAlif stage both call this
// symbol, which keeps the two paths bit-identical per machine.
SNNSEC_KERNEL_CLONES
void alif_step(const AlifParameters& p, std::int64_t n, const float* x,
               float* state_i, float* state_v, float* state_b, float* z_out,
               float* v_decayed_out, float* b0_out) {
  const float a = p.lif.a();
  const float bsyn = p.lif.b();
  const float beta = p.beta;
  const float rho = p.rho;
  for (std::int64_t k = 0; k < n; ++k) {
    const float v0 = state_v[k];
    const float i0 = state_i[k];
    const float b0 = state_b[k];
    const float v_decayed = v0 + a * ((p.lif.v_leak - v0) + i0);
    const float i_decayed = bsyn * i0;
    const float theta = p.lif.v_th + beta * b0;
    const float spike = v_decayed > theta ? 1.0f : 0.0f;
    v_decayed_out[k] = v_decayed;
    b0_out[k] = b0;  // pre-update adaptation (enters theta); BPTT input
    z_out[k] = spike;
    state_v[k] = (1.0f - spike) * v_decayed + spike * p.lif.v_reset;
    state_i[k] = i_decayed + x[k];
    state_b[k] = rho * b0 + (1.0f - rho) * spike;
  }
}

AlifLayer::AlifLayer(std::int64_t time_steps, AlifParameters params,
                     Surrogate surrogate)
    : time_steps_(time_steps), params_(params), surrogate_(surrogate) {
  SNNSEC_CHECK(time_steps_ > 0, "AlifLayer: time_steps must be positive");
  params_.validate();
}

Tensor AlifLayer::forward(const Tensor& x, nn::Mode mode) {
  const std::int64_t total = x.dim(0);
  SNNSEC_CHECK(total % time_steps_ == 0,
               name() << ": dim0 " << total << " not divisible by T="
                      << time_steps_);
  const std::int64_t per_step = x.numel() / time_steps_;

  Tensor z(x.shape());
  Tensor vd(x.shape());
  Tensor badapt_cache(x.shape());
  const float* px = x.data();
  float* pz = z.data();
  float* pvd = vd.data();
  float* pb = badapt_cache.data();

  util::parallel_for_chunked(0, per_step, [&](std::int64_t lo, std::int64_t hi) {
    const std::int64_t len = hi - lo;
    // State carries come from the worker thread's arena — the per-call
    // vectors this replaced were a steady malloc/free drumbeat at attack
    // and serving scale.
    util::Workspace& tws = util::Workspace::local();
    util::Workspace::Scope chunk_scope(tws);
    float* state_i = tws.alloc<float>(static_cast<std::size_t>(len));
    float* state_v = tws.alloc<float>(static_cast<std::size_t>(len));
    float* state_b = tws.alloc<float>(static_cast<std::size_t>(len));
    std::fill(state_i, state_i + len, 0.0f);
    std::fill(state_v, state_v + len, 0.0f);
    std::fill(state_b, state_b + len, 0.0f);
    for (std::int64_t t = 0; t < time_steps_; ++t) {
      const std::int64_t off = t * per_step + lo;
      alif_step(params_, len, px + off, state_i, state_v, state_b, pz + off,
                pvd + off, pb + off);
    }
  });

  double spike_sum = 0.0;
  for (std::int64_t i = 0; i < z.numel(); ++i) spike_sum += pz[i];
  last_spike_rate_ = spike_sum / static_cast<double>(z.numel());

  if (nn::cache_enabled(mode)) {
    v_decayed_ = std::move(vd);
    spikes_ = z;
    adaptation_ = std::move(badapt_cache);
    per_step_ = per_step;
    have_cache_ = true;
  }
  return z;
}

Tensor AlifLayer::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, name() << "::backward without cached forward");
  SNNSEC_CHECK(grad_out.shape() == spikes_.shape(),
               name() << "::backward: grad shape mismatch");
  const LifParameters& p = params_.lif;
  const float a = p.a();
  const float bsyn = p.b();
  const float beta = params_.beta;
  const float rho = params_.rho;
  const Surrogate sg = surrogate_;
  const std::int64_t per_step = per_step_;

  Tensor dx(grad_out.shape());
  const float* gz = grad_out.data();
  const float* pvd = v_decayed_.data();
  const float* pz = spikes_.data();
  const float* pb = adaptation_.data();
  float* pdx = dx.data();

  util::parallel_for_chunked(0, per_step, [&](std::int64_t lo, std::int64_t hi) {
    const std::int64_t len = hi - lo;
    std::vector<float> gv(static_cast<std::size_t>(len), 0.0f);
    std::vector<float> gi(static_cast<std::size_t>(len), 0.0f);
    std::vector<float> gb(static_cast<std::size_t>(len), 0.0f);
    for (std::int64_t t = time_steps_ - 1; t >= 0; --t) {
      const std::int64_t off = t * per_step + lo;
      for (std::int64_t k = 0; k < len; ++k) {
        const float vd = pvd[off + k];
        const float z = pz[off + k];
        const float b0 = pb[off + k];
        const float carry_v = gv[static_cast<std::size_t>(k)];
        const float carry_i = gi[static_cast<std::size_t>(k)];
        const float carry_b = gb[static_cast<std::size_t>(k)];
        pdx[off + k] = carry_i;
        const float theta = p.v_th + beta * b0;
        const float s = sg.grad(vd - theta);
        const float tdz = gz[off + k] + carry_v * (p.v_reset - vd) +
                          carry_b * (1.0f - rho);
        const float gvd = carry_v * (1.0f - z) + tdz * s;
        gv[static_cast<std::size_t>(k)] = gvd * (1.0f - a);
        gi[static_cast<std::size_t>(k)] = gvd * a + carry_i * bsyn;
        gb[static_cast<std::size_t>(k)] = carry_b * rho - tdz * beta * s;
      }
    }
  });
  return dx;
}

std::string AlifLayer::name() const {
  std::ostringstream oss;
  oss << "AlifLayer(T=" << time_steps_ << ", v_th=" << params_.lif.v_th
      << ", beta=" << params_.beta << ", rho=" << params_.rho << ")";
  return oss.str();
}

void AlifLayer::clear_cache() {
  v_decayed_ = Tensor();
  spikes_ = Tensor();
  adaptation_ = Tensor();
  have_cache_ = false;
}

}  // namespace snnsec::snn
