// Surrogate gradients for the non-differentiable spike threshold.
//
// The forward spike is the exact Heaviside step z = H(v - v_th); the
// backward pass substitutes a smooth pseudo-derivative dz/dv = sg(v - v_th).
// SuperSpike (Zenke & Ganguli 2018) is Norse's default and the one the
// paper trained with; the alternatives feed the surrogate ablation bench.
#pragma once

#include <string>

namespace snnsec::snn {

enum class SurrogateKind {
  kSuperSpike,       ///< 1 / (1 + alpha*|u|)^2
  kTriangle,         ///< max(0, 1 - alpha*|u|)
  kSigmoidDeriv,     ///< s(1-s)*alpha with s = sigmoid(alpha*u)
  kStraightThrough,  ///< 1 when |u| < 1/(2*alpha), else 0
};

struct Surrogate {
  SurrogateKind kind = SurrogateKind::kSuperSpike;
  /// Slope/steepness. Norse's SuperSpike default is 100; smaller values
  /// widen the gradient support and generally ease CPU-scale training
  /// (ablated in bench/ablation_surrogate).
  float alpha = 10.0f;

  /// Pseudo-derivative at membrane distance u = v - v_th.
  float grad(float u) const;

  std::string to_string() const;
};

}  // namespace snnsec::snn
