// SNNSEC_HOT: per-timestep serving path — steady state must not allocate.
#include "snn/anytime.hpp"

#include <algorithm>
#include <limits>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "snn/alif_layer.hpp"
#include "snn/encoder.hpp"
#include "snn/li_readout.hpp"
#include "snn/lif_layer.hpp"
#include "util/checked.hpp"
#include "util/workspace.hpp"

namespace snnsec::snn {

using tensor::Shape;
using tensor::Tensor;

namespace {

// Dim-wise geometry compare so a warm steady state never reallocates.
void ensure_like(Tensor& t, const Tensor& ref) {
  if (t.ndim() == ref.ndim()) {
    bool same = true;
    for (std::int64_t d = 0; d < ref.ndim(); ++d)
      if (t.dim(d) != ref.dim(d)) same = false;
    if (same) return;
  }
  t = Tensor(ref.shape());
}

void ensure_flat(Tensor& t, std::int64_t n) {
  if (t.ndim() == 1 && t.dim(0) == n) return;
  t = Tensor(Shape{n});
}

void ensure_2d(Tensor& t, std::int64_t rows, std::int64_t cols) {
  if (t.ndim() == 2 && t.dim(0) == rows && t.dim(1) == cols) return;
  t = Tensor(Shape{rows, cols});
}

}  // namespace

AnytimeRunner::AnytimeRunner(SpikingClassifier& model, bool allow_faults)
    : model_(model),
      time_steps_(model.time_steps()),
      num_classes_(model.num_classes()),
      allow_faults_(allow_faults) {
  nn::Sequential& net = model_.net();
  SNNSEC_CHECK(net.size() > 0, "AnytimeRunner: empty network");
  // One-time stage-table build at construction, never on the per-step path.
  // NOLINTNEXTLINE(snnsec-hot-alloc): construction-time container growth
  stages_.reserve(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Layer& layer = net.layer(i);
    const std::string_view kind = layer.kind();
    Stage stage;
    stage.layer = &layer;
    if (kind == "Scale") {
      stage.kind = StageKind::kScale;
    } else if (kind == "LifLayer") {
      auto& lif = static_cast<LifLayer&>(layer);
      SNNSEC_CHECK(lif.time_steps() == time_steps_,
                   "AnytimeRunner: LifLayer T=" << lif.time_steps()
                                                << " != model T="
                                                << time_steps_);
      stage.kind = StageKind::kLif;
      stage.sketch_index = static_cast<int>(sketch_layers_.size());
      // NOLINTNEXTLINE(snnsec-hot-alloc): construction-time container growth
      sketch_layers_.push_back(obs::SketchLayerInfo{
          "lif" + std::to_string(sketch_layers_.size()),
          static_cast<double>(lif.params().v_th)});
    } else if (kind == "AlifLayer") {
      auto& alif = static_cast<AlifLayer&>(layer);
      SNNSEC_CHECK(alif.time_steps() == time_steps_,
                   "AnytimeRunner: AlifLayer T=" << alif.time_steps()
                                                 << " != model T="
                                                 << time_steps_);
      stage.kind = StageKind::kAlif;
      stage.sketch_index = static_cast<int>(sketch_layers_.size());
      // NOLINTNEXTLINE(snnsec-hot-alloc): construction-time container growth
      sketch_layers_.push_back(obs::SketchLayerInfo{
          "lif" + std::to_string(sketch_layers_.size()),
          static_cast<double>(alif.params().lif.v_th)});
    } else if (kind == "Conv2d") {
      stage.kind = StageKind::kConv;
    } else if (kind == "AvgPool2d") {
      stage.kind = StageKind::kAvgPool;
    } else if (kind == "Flatten") {
      stage.kind = StageKind::kFlatten;
    } else if (kind == "Linear") {
      stage.kind = StageKind::kLinear;
    } else if (kind == "LiReadout") {
      auto& readout = static_cast<LiReadout&>(layer);
      SNNSEC_CHECK(readout.time_steps() == time_steps_,
                   "AnytimeRunner: LiReadout T=" << readout.time_steps()
                                                 << " != model T="
                                                 << time_steps_);
      SNNSEC_CHECK(i + 1 == net.size(),
                   "AnytimeRunner: LiReadout must be the final layer");
      stage.kind = StageKind::kReadout;
    } else if (kind == "PoissonEncoder") {
      SNNSEC_CHECK(false,
                   "AnytimeRunner: Poisson encoding draws fresh spikes per "
                   "forward; anytime serving requires the deterministic "
                   "constant-current encoder");
    } else {
      SNNSEC_CHECK(false, "AnytimeRunner: unsupported layer kind '"
                              << kind << "' at position " << i);
    }
    // NOLINTNEXTLINE(snnsec-hot-alloc): construction-time container growth
    stages_.push_back(std::move(stage));
  }
  SNNSEC_CHECK(stages_.back().kind == StageKind::kReadout,
               "AnytimeRunner: network must end in LiReadout");
  // Wire the producer -> consumer event handoff: a spiking stage whose
  // downstream GEMM (looking past the pure-reshape Flatten) is a Linear
  // resolved to the event kernel compresses its slab once per step; the
  // Linear consumes the lists instead of re-scanning the dense slab. This
  // is topology-derived at construction — which stages hand off never
  // depends on the data flowing through them.
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].kind != StageKind::kLinear) continue;
    const auto& lin = static_cast<const nn::Linear&>(*stages_[i].layer);
    if (lin.input_hint() != tensor::SparsityHint::kEvents) continue;
    std::size_t j = i;
    while (j > 0 && stages_[j - 1].kind == StageKind::kFlatten) --j;
    if (j == 0) continue;
    const StageKind pk = stages_[j - 1].kind;
    if (pk == StageKind::kLif || pk == StageKind::kAlif) {
      stages_[j - 1].build_events = true;
      stages_[i].event_source = static_cast<int>(j - 1);
    }
  }
}

void AnytimeRunner::begin(const Tensor& x) {
  SNNSEC_CHECK(x.ndim() == 4,
               "AnytimeRunner::begin: expects [N, C, H, W], got "
                   << x.shape().to_string());
  for (Stage& s : stages_) {
    if (s.kind != StageKind::kLif) continue;
    const auto& lif = static_cast<const LifLayer&>(*s.layer);
    if (allow_faults_) {
      // Chaos mode: latch the armed spec for this request. The per-slot
      // state (stuck mask, jitter carry) is sized lazily at the first step,
      // once the stage's activation geometry is known.
      s.fault = lif.spike_fault();
      s.fault_active = s.fault.any();
      continue;
    }
    SNNSEC_CHECK(!lif.spike_fault().any(),
                 "AnytimeRunner: " << lif.name()
                                   << " has an armed spike fault; the fault "
                                      "post-pass runs in LifLayer::forward, "
                                      "which anytime stepping bypasses "
                                      "(construct with allow_faults to opt "
                                      "into the per-step chaos replay)");
  }
  ensure_like(input_, x);
  std::copy(x.data(), x.data() + x.numel(), input_.data());
  batch_ = x.dim(0);
  ensure_2d(logits_, batch_, num_classes_);
  logits_.fill(-std::numeric_limits<float>::infinity());
  t_ = 0;
  began_ = true;
  if (sketch_ != nullptr) sketch_->begin(batch_);
}

void AnytimeRunner::set_sketch(obs::SketchAccumulator* sketch) {
  if (sketch != nullptr) {
    SNNSEC_CHECK(sketch->configured(),
                 "AnytimeRunner::set_sketch: accumulator not configured");
    SNNSEC_CHECK(sketch->num_layers() ==
                     static_cast<std::int64_t>(sketch_layers_.size()),
                 "AnytimeRunner::set_sketch: accumulator tracks "
                     << sketch->num_layers() << " layers, model has "
                     << sketch_layers_.size());
  }
  sketch_ = sketch;
}

// SNNSEC_HOT entry: one simulated timestep, the serving inner loop.
void AnytimeRunner::step() {
  SNNSEC_CHECK(began_, "AnytimeRunner::step before begin");
  SNNSEC_CHECK(!done(), "AnytimeRunner::step past the time window T="
                            << time_steps_);
  // Constant-current encoding replays the same latched image every step, so
  // the chain below is exactly one time-slab of the unrolled forward.
  // Event lists built by spiking stages live in this arena scope until the
  // consuming Linear has run; nested scopes opened by conv/linear stages
  // rewind only to their own marks, so the handoff stays valid all step.
  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope slab_scope(ws);
  const Tensor* cur = &input_;
  for (Stage& s : stages_) {
    switch (s.kind) {
      case StageKind::kScale: {
        const float factor = static_cast<const nn::Scale&>(*s.layer).factor();
        ensure_like(s.out, *cur);
        const float* px = cur->data();
        float* py = s.out.data();
        const std::int64_t n = cur->numel();
        for (std::int64_t k = 0; k < n; ++k) py[k] = px[k] * factor;
        break;
      }
      case StageKind::kLif: {
        const auto& lif = static_cast<const LifLayer&>(*s.layer);
        const std::int64_t n = cur->numel();
        ensure_flat(s.state_i, n);
        ensure_flat(s.state_v, n);
        ensure_flat(s.scratch, n);
        if (t_ == 0) {
          s.state_i.zero_();
          s.state_v.zero_();
        }
        ensure_like(s.out, *cur);
        lif_step(lif.params(), n, cur->data(), s.state_i.data(),
                 s.state_v.data(), s.out.data(), s.scratch.data());
        if (s.fault_active) apply_stage_fault(s, n);
        if (sketch_ != nullptr)
          sketch_->accumulate(s.sketch_index, s.out.data(), s.scratch.data(),
                              n);
        // Compress AFTER the fault post-pass — the consumer must see the
        // same slab values the dense path would.
        if (s.build_events) {
          const std::int64_t rows = s.out.dim(0);
          const std::int64_t cols = n / rows;
          s.events = tensor::build_event_rows(s.out.data(), cols, rows, cols,
                                              ws);
        }
        break;
      }
      case StageKind::kAlif: {
        // One time slab of AlifLayer::forward — the same alif_step symbol
        // the layer's unrolled loop calls, so stepping time outside the
        // layer reorders no floating-point operation.
        const auto& alif = static_cast<const AlifLayer&>(*s.layer);
        const std::int64_t n = cur->numel();
        ensure_flat(s.state_i, n);
        ensure_flat(s.state_v, n);
        ensure_flat(s.state_b, n);
        ensure_flat(s.scratch, n);
        ensure_flat(s.scratch_b, n);
        if (t_ == 0) {
          s.state_i.zero_();
          s.state_v.zero_();
          s.state_b.zero_();
        }
        ensure_like(s.out, *cur);
        alif_step(alif.params(), n, cur->data(), s.state_i.data(),
                  s.state_v.data(), s.state_b.data(), s.out.data(),
                  s.scratch.data(), s.scratch_b.data());
        if (sketch_ != nullptr)
          sketch_->accumulate(s.sketch_index, s.out.data(), s.scratch.data(),
                              n);
        if (s.build_events) {
          const std::int64_t rows = s.out.dim(0);
          const std::int64_t cols = n / rows;
          s.events = tensor::build_event_rows(s.out.data(), cols, rows, cols,
                                              ws);
        }
        break;
      }
      case StageKind::kConv: {
        static_cast<nn::Conv2d&>(*s.layer).forward_into(*cur, s.out,
                                                        nn::Mode::kEval);
        break;
      }
      case StageKind::kAvgPool: {
        static_cast<const nn::AvgPool2d&>(*s.layer).forward_into(*cur, s.out);
        break;
      }
      case StageKind::kFlatten: {
        const std::int64_t rows = cur->dim(0);
        ensure_2d(s.out, rows, cur->numel() / rows);
        std::copy(cur->data(), cur->data() + cur->numel(), s.out.data());
        break;
      }
      case StageKind::kLinear: {
        auto& lin = static_cast<nn::Linear&>(*s.layer);
        if (s.event_source >= 0)
          // Consume the event lists the producing spiking stage built this
          // step — same slab values, same build order, so the result is
          // bit-identical to lin.forward_into on the dense slab.
          lin.forward_into_events(
              stages_[static_cast<std::size_t>(s.event_source)].events,
              s.out);
        else
          lin.forward_into(*cur, s.out);
        break;
      }
      case StageKind::kReadout: {
        const auto& readout = static_cast<const LiReadout&>(*s.layer);
        const std::int64_t n = cur->numel();
        SNNSEC_CHECK(cur->ndim() == 2 && cur->dim(1) == num_classes_,
                     "AnytimeRunner: readout input "
                         << cur->shape().to_string() << ", expected [N, "
                         << num_classes_ << "]");
        ensure_flat(s.state_i, n);
        ensure_flat(s.state_v, n);
        if (t_ == 0) {
          s.state_i.zero_();
          s.state_v.zero_();
        }
        ensure_like(s.out, *cur);
        li_step(readout.params(), n, cur->data(), s.state_i.data(),
                s.state_v.data(), s.out.data());
        // Strictly-greater running max — the same comparison LiReadout's
        // one-shot decode uses, folded in as the trace grows.
        const float* row = s.out.data();
        float* pl = logits_.data();
        for (std::int64_t k = 0; k < n; ++k)
          if (row[k] > pl[k]) pl[k] = row[k];
        break;
      }
    }
    cur = &s.out;
  }
  if (sketch_ != nullptr) sketch_->end_step();
  ++t_;
}

void AnytimeRunner::apply_stage_fault(Stage& s, std::int64_t n) {
  if (t_ == 0) {
    // Rebuild the deterministic per-request fault state. Slot-major mask
    // draws from fork("slots") make the stuck assignment bit-identical to
    // LifLayer::apply_spike_fault for the same seed and geometry.
    util::Rng rng(s.fault.seed);
    util::Rng slot_rng = rng.fork("slots");
    // NOLINTNEXTLINE(snnsec-hot-alloc): armed-fault (chaos) path only
    s.stuck.assign(static_cast<std::size_t>(n), 0);
    for (std::int64_t k = 0; k < n; ++k) {
      if (s.fault.stuck_zero_fraction > 0.0 &&
          slot_rng.bernoulli(s.fault.stuck_zero_fraction))
        s.stuck[static_cast<std::size_t>(k)] = 1;
      else if (s.fault.stuck_one_fraction > 0.0 &&
               slot_rng.bernoulli(s.fault.stuck_one_fraction))
        s.stuck[static_cast<std::size_t>(k)] = 2;
    }
    ensure_flat(s.carry, n);
    s.carry.zero_();
    s.fault_rng = rng.fork("spikes");
  }
  // Same composition as the one-shot post-pass, one time slab at a time:
  // stuck masks override, surviving spikes are independently dropped or
  // delayed one step (the delay rides s.carry into the next slab; a spike
  // jittered at the final step is emitted in place, matching t+1 < T).
  const bool last_step = t_ + 1 >= time_steps_;
  float* z = s.out.data();
  float* carry = s.carry.data();
  for (std::int64_t k = 0; k < n; ++k) {
    const std::uint8_t st = s.stuck[static_cast<std::size_t>(k)];
    if (st == 1) {
      z[k] = 0.0f;
      carry[k] = 0.0f;
      continue;
    }
    if (st == 2) {
      z[k] = 1.0f;
      carry[k] = 0.0f;
      continue;
    }
    const bool fired = z[k] > 0.5f;
    float out = carry[k];  // a spike delayed from step t-1 arrives now
    carry[k] = 0.0f;
    if (fired) {
      if (s.fault.drop_prob > 0.0 && s.fault_rng.bernoulli(s.fault.drop_prob)) {
        // dropped
      } else if (s.fault.jitter_prob > 0.0 &&
                 s.fault_rng.bernoulli(s.fault.jitter_prob) && !last_step) {
        carry[k] = 1.0f;
      } else {
        out = 1.0f;
      }
    }
    z[k] = out;
  }
}

const Tensor& AnytimeRunner::run(const Tensor& x, std::int64_t max_steps) {
  begin(x);
  const std::int64_t budget =
      (max_steps <= 0 || max_steps > time_steps_) ? time_steps_ : max_steps;
  for (std::int64_t t = 0; t < budget; ++t) step();
  return logits_;
}

}  // namespace snnsec::snn
