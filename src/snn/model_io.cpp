#include "snn/model_io.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "nn/layer_registry.hpp"
#include "obs/metrics.hpp"
#include "tensor/serialize.hpp"
#include "util/logging.hpp"

namespace snnsec::snn {

using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr float kFormatVersion = 2.0f;

// --- validated checkpoint container ---------------------------------------

constexpr float kCheckpointVersion = 1.0f;
constexpr const char* kFormatRecord = "meta/format";

// A 64-bit value split into four exact 16-bit chunks (floats represent
// integers up to 2^24 exactly, so 16-bit chunks round-trip losslessly).
void encode_u64(std::uint64_t v, float* dst) {
  for (int i = 0; i < 4; ++i)
    dst[i] = static_cast<float>((v >> (16 * i)) & 0xFFFFu);
}

std::uint64_t decode_u64(const float* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint64_t>(src[i]) << (16 * i);
  return v;
}

void fnv1a_bytes(const void* data, std::size_t n, std::uint64_t& h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
}

// Format record: [version, hash(4 chunks), digest(4 chunks)].
Tensor encode_format(std::uint64_t config_hash, std::uint64_t digest) {
  Tensor t(Shape{9});
  t[0] = kCheckpointVersion;
  encode_u64(config_hash, t.data() + 1);
  encode_u64(digest, t.data() + 5);
  return t;
}

Tensor encode_arch(const nn::LenetSpec& arch) {
  Tensor t(Shape{10});
  t[0] = kFormatVersion;
  t[1] = static_cast<float>(arch.in_channels);
  t[2] = static_cast<float>(arch.image_size);
  t[3] = static_cast<float>(arch.num_classes);
  t[4] = static_cast<float>(arch.conv1_channels);
  t[5] = static_cast<float>(arch.conv2_channels);
  t[6] = static_cast<float>(arch.conv3_channels);
  t[7] = static_cast<float>(arch.fc_hidden);
  t[8] = static_cast<float>(arch.fc_hidden2);
  t[9] = static_cast<float>(arch.dropout);
  return t;
}

nn::LenetSpec decode_arch(const Tensor& t) {
  SNNSEC_CHECK(t.numel() == 10 && t[0] == kFormatVersion,
               "model file: unsupported arch record (version " << t[0] << ")");
  nn::LenetSpec arch;
  arch.in_channels = static_cast<std::int64_t>(t[1]);
  arch.image_size = static_cast<std::int64_t>(t[2]);
  arch.num_classes = static_cast<std::int64_t>(t[3]);
  arch.conv1_channels = static_cast<std::int64_t>(t[4]);
  arch.conv2_channels = static_cast<std::int64_t>(t[5]);
  arch.conv3_channels = static_cast<std::int64_t>(t[6]);
  arch.fc_hidden = static_cast<std::int64_t>(t[7]);
  arch.fc_hidden2 = static_cast<std::int64_t>(t[8]);
  arch.dropout = t[9];
  return arch;
}

Tensor encode_config(const SnnConfig& cfg) {
  Tensor t(Shape{17});
  t[0] = kFormatVersion;
  t[1] = static_cast<float>(cfg.v_th);
  t[2] = static_cast<float>(cfg.time_steps);
  t[3] = static_cast<float>(static_cast<int>(cfg.surrogate.kind));
  t[4] = cfg.surrogate.alpha;
  t[5] = cfg.neuron.tau_syn_inv;
  t[6] = cfg.neuron.tau_mem_inv;
  t[7] = cfg.neuron.v_leak;
  t[8] = cfg.neuron.v_reset;
  t[9] = cfg.neuron.dt;
  t[10] = static_cast<float>(static_cast<int>(cfg.encoder));
  t[11] = cfg.encoder_uses_vth ? 1.0f : 0.0f;
  t[12] = static_cast<float>(cfg.weight_gain);
  t[13] = static_cast<float>(cfg.input_gain);
  t[14] = static_cast<float>(static_cast<int>(cfg.neuron_model));
  t[15] = cfg.alif_beta;
  t[16] = cfg.alif_rho;
  return t;
}

SnnConfig decode_config(const Tensor& t) {
  SNNSEC_CHECK(t.numel() == 17 && t[0] == kFormatVersion,
               "model file: unsupported snn record (version " << t[0] << ")");
  SnnConfig cfg;
  cfg.v_th = t[1];
  cfg.time_steps = static_cast<std::int64_t>(t[2]);
  cfg.surrogate.kind = static_cast<SurrogateKind>(static_cast<int>(t[3]));
  cfg.surrogate.alpha = t[4];
  cfg.neuron.tau_syn_inv = t[5];
  cfg.neuron.tau_mem_inv = t[6];
  cfg.neuron.v_leak = t[7];
  cfg.neuron.v_reset = t[8];
  cfg.neuron.dt = t[9];
  cfg.encoder = static_cast<EncoderKind>(static_cast<int>(t[10]));
  // NOLINTNEXTLINE(snnsec-float-eq): decodes an exactly-encoded 0/1 flag from the checkpoint
  cfg.encoder_uses_vth = t[11] != 0.0f;
  cfg.weight_gain = t[12];
  cfg.input_gain = t[13];
  cfg.neuron_model = static_cast<NeuronModel>(static_cast<int>(t[14]));
  cfg.alif_beta = t[15];
  cfg.alif_rho = t[16];
  return cfg;
}

// Architecture record: [version, layer-kind-sequence fingerprint (4
// chunks)]. The fingerprint hashes the registry ids of the built network's
// layer stack (nn::architecture_fingerprint), so positional weight restore
// can never pour tensors into a reordered or swapped stack even when the
// LenetSpec/SnnConfig hash matches.
constexpr const char* kLayersRecord = "meta/layers";

Tensor encode_layers(const nn::Layer& net) {
  Tensor t(Shape{5});
  t[0] = kFormatVersion;
  encode_u64(nn::architecture_fingerprint(net), t.data() + 1);
  return t;
}

std::uint64_t decode_layers(const Tensor& t) {
  SNNSEC_CHECK(t.numel() == 5 && t[0] == kFormatVersion,
               "model file: unsupported layers record (version " << t[0]
                                                                 << ")");
  return decode_u64(t.data() + 1);
}

}  // namespace

std::uint64_t spiking_lenet_config_hash(const nn::LenetSpec& arch,
                                        const SnnConfig& config) {
  std::map<std::string, Tensor> meta;
  meta.emplace("meta/arch", encode_arch(arch));
  meta.emplace("meta/snn", encode_config(config));
  return checkpoint_digest(meta);
}

std::uint64_t checkpoint_digest(
    const std::map<std::string, Tensor>& items) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (const auto& [name, t] : items) {
    if (name == kFormatRecord) continue;
    fnv1a_bytes(name.data(), name.size(), h);
    for (std::int64_t d = 0; d < t.ndim(); ++d) {
      const std::int64_t dim = t.dim(d);
      fnv1a_bytes(&dim, sizeof(dim), h);
    }
    fnv1a_bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float),
                h);
  }
  return h;
}

void save_checkpoint(const std::string& path,
                     const std::map<std::string, Tensor>& items,
                     std::uint64_t config_hash) {
  std::map<std::string, Tensor> archive = items;
  archive.insert_or_assign(kFormatRecord,
                           encode_format(config_hash,
                                         checkpoint_digest(items)));
  tensor::save_archive_file(path, archive);  // atomic write-then-rename
}

std::optional<std::map<std::string, Tensor>> try_load_checkpoint(
    const std::string& path, std::uint64_t config_hash) {
  if (!std::filesystem::exists(path)) return std::nullopt;
  std::map<std::string, Tensor> archive;
  try {
    archive = tensor::load_archive_file(path);
  } catch (const util::Error& e) {
    SNNSEC_LOG_WARN("checkpoint " << path
                                  << " rejected (unreadable): " << e.what());
    SNNSEC_COUNTER_ADD("checkpoint.rejected", 1);
    return std::nullopt;
  }
  const auto it = archive.find(kFormatRecord);
  if (it == archive.end() || it->second.numel() != 9) {
    SNNSEC_LOG_WARN("checkpoint " << path
                                  << " rejected: missing format record "
                                     "(pre-validation file?)");
    SNNSEC_COUNTER_ADD("checkpoint.rejected", 1);
    return std::nullopt;
  }
  const Tensor& fmt = it->second;
  if (fmt[0] != kCheckpointVersion) {
    SNNSEC_LOG_WARN("checkpoint " << path
                                  << " rejected: format version " << fmt[0]
                                  << " != " << kCheckpointVersion);
    SNNSEC_COUNTER_ADD("checkpoint.rejected", 1);
    return std::nullopt;
  }
  if (decode_u64(fmt.data() + 1) != config_hash) {
    SNNSEC_LOG_WARN("checkpoint " << path
                                  << " rejected: config hash mismatch "
                                     "(stale file from another config)");
    SNNSEC_COUNTER_ADD("checkpoint.rejected", 1);
    return std::nullopt;
  }
  const std::uint64_t stored_digest = decode_u64(fmt.data() + 5);
  archive.erase(it);
  if (checkpoint_digest(archive) != stored_digest) {
    SNNSEC_LOG_WARN("checkpoint " << path
                                  << " rejected: payload digest mismatch "
                                     "(corrupt/bit-flipped file)");
    SNNSEC_COUNTER_ADD("checkpoint.rejected", 1);
    return std::nullopt;
  }
  return archive;
}

void save_spiking_lenet(const std::string& path, SpikingClassifier& model,
                        const nn::LenetSpec& arch, const SnnConfig& config) {
  std::map<std::string, Tensor> archive;
  archive.emplace("meta/arch", encode_arch(arch));
  archive.emplace("meta/snn", encode_config(config));
  archive.emplace(kLayersRecord, encode_layers(model.net()));
  const auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "p%03u", static_cast<unsigned>(i));
    archive.emplace(name, params[i]->value);
  }
  save_checkpoint(path, archive, spiking_lenet_config_hash(arch, config));
}

CheckpointPayload load_validated_payload(const std::string& path) {
  auto archive = tensor::load_archive_file(path);
  // Validate the format record before touching any payload: version,
  // payload digest (truncation/bit-flips) and self-consistent config hash.
  const auto fmt_it = archive.find(kFormatRecord);
  SNNSEC_CHECK(fmt_it != archive.end() && fmt_it->second.numel() == 9,
               "model file " << path << ": missing format record");
  const std::uint64_t stored_hash = decode_u64(fmt_it->second.data() + 1);
  const std::uint64_t stored_digest = decode_u64(fmt_it->second.data() + 5);
  SNNSEC_CHECK(fmt_it->second[0] == kCheckpointVersion,
               "model file " << path << ": unsupported checkpoint version "
                             << fmt_it->second[0]);
  archive.erase(fmt_it);
  SNNSEC_CHECK(checkpoint_digest(archive) == stored_digest,
               "model file " << path << ": payload digest mismatch (corrupt)");
  SNNSEC_CHECK(archive.count("meta/arch") == 1 &&
                   archive.count("meta/snn") == 1 &&
                   archive.count(kLayersRecord) == 1,
               "model file " << path << ": missing metadata records");
  CheckpointPayload out;
  out.arch = decode_arch(archive.at("meta/arch"));
  out.config = decode_config(archive.at("meta/snn"));
  SNNSEC_CHECK(stored_hash == spiking_lenet_config_hash(out.arch, out.config),
               "model file " << path << ": config hash mismatch");
  out.config_hash = stored_hash;
  out.digest = stored_digest;
  out.archive = std::move(archive);
  return out;
}

std::unique_ptr<SpikingClassifier> rebuild_spiking_lenet(
    const CheckpointPayload& payload, const std::string& label) {
  // Rebuild and overwrite the (arbitrary) fresh initialization.
  util::Rng rng(0);
  auto model = build_spiking_lenet(payload.arch, payload.config, rng);
  SNNSEC_CHECK(decode_layers(payload.archive.at(kLayersRecord)) ==
                   nn::architecture_fingerprint(model->net()),
               "model file "
                   << label
                   << ": architecture fingerprint mismatch — the stored "
                      "layer-kind sequence differs from the rebuilt network, "
                      "positional weight restore would misassign tensors");
  const auto params = model->parameters();
  SNNSEC_CHECK(payload.archive.size() == params.size() + 3,
               "model file " << label << ": expected " << params.size()
                             << " parameter tensors, found "
                             << payload.archive.size() - 3);
  for (std::size_t i = 0; i < params.size(); ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "p%03u", static_cast<unsigned>(i));
    const auto it = payload.archive.find(name);
    SNNSEC_CHECK(it != payload.archive.end(),
                 "model file " << label << ": missing tensor " << name);
    SNNSEC_CHECK(it->second.shape() == params[i]->value.shape(),
                 "model file " << label << ": shape mismatch for " << name
                               << ": " << it->second.shape().to_string()
                               << " vs "
                               << params[i]->value.shape().to_string());
    params[i]->value = it->second;
  }
  return model;
}

LoadedModel load_spiking_lenet(const std::string& path) {
  CheckpointPayload payload = load_validated_payload(path);
  LoadedModel out;
  out.model = rebuild_spiking_lenet(payload, path);
  out.arch = payload.arch;
  out.config = payload.config;
  return out;
}

std::optional<LoadedModel> try_load_spiking_lenet(const std::string& path) {
  if (!std::filesystem::exists(path)) return std::nullopt;
  try {
    return load_spiking_lenet(path);
  } catch (const util::Error& e) {
    SNNSEC_LOG_WARN("model file " << path << " rejected: " << e.what());
    SNNSEC_COUNTER_ADD("checkpoint.rejected", 1);
    return std::nullopt;
  }
}

}  // namespace snnsec::snn
