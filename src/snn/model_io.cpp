#include "snn/model_io.hpp"

#include <cstdio>
#include <fstream>
#include <map>

#include "tensor/serialize.hpp"
#include "util/csv.hpp"  // ensure_parent_dir

namespace snnsec::snn {

using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr float kFormatVersion = 2.0f;

Tensor encode_arch(const nn::LenetSpec& arch) {
  Tensor t(Shape{10});
  t[0] = kFormatVersion;
  t[1] = static_cast<float>(arch.in_channels);
  t[2] = static_cast<float>(arch.image_size);
  t[3] = static_cast<float>(arch.num_classes);
  t[4] = static_cast<float>(arch.conv1_channels);
  t[5] = static_cast<float>(arch.conv2_channels);
  t[6] = static_cast<float>(arch.conv3_channels);
  t[7] = static_cast<float>(arch.fc_hidden);
  t[8] = static_cast<float>(arch.fc_hidden2);
  t[9] = static_cast<float>(arch.dropout);
  return t;
}

nn::LenetSpec decode_arch(const Tensor& t) {
  SNNSEC_CHECK(t.numel() == 10 && t[0] == kFormatVersion,
               "model file: unsupported arch record (version " << t[0] << ")");
  nn::LenetSpec arch;
  arch.in_channels = static_cast<std::int64_t>(t[1]);
  arch.image_size = static_cast<std::int64_t>(t[2]);
  arch.num_classes = static_cast<std::int64_t>(t[3]);
  arch.conv1_channels = static_cast<std::int64_t>(t[4]);
  arch.conv2_channels = static_cast<std::int64_t>(t[5]);
  arch.conv3_channels = static_cast<std::int64_t>(t[6]);
  arch.fc_hidden = static_cast<std::int64_t>(t[7]);
  arch.fc_hidden2 = static_cast<std::int64_t>(t[8]);
  arch.dropout = t[9];
  return arch;
}

Tensor encode_config(const SnnConfig& cfg) {
  Tensor t(Shape{17});
  t[0] = kFormatVersion;
  t[1] = static_cast<float>(cfg.v_th);
  t[2] = static_cast<float>(cfg.time_steps);
  t[3] = static_cast<float>(static_cast<int>(cfg.surrogate.kind));
  t[4] = cfg.surrogate.alpha;
  t[5] = cfg.neuron.tau_syn_inv;
  t[6] = cfg.neuron.tau_mem_inv;
  t[7] = cfg.neuron.v_leak;
  t[8] = cfg.neuron.v_reset;
  t[9] = cfg.neuron.dt;
  t[10] = static_cast<float>(static_cast<int>(cfg.encoder));
  t[11] = cfg.encoder_uses_vth ? 1.0f : 0.0f;
  t[12] = static_cast<float>(cfg.weight_gain);
  t[13] = static_cast<float>(cfg.input_gain);
  t[14] = static_cast<float>(static_cast<int>(cfg.neuron_model));
  t[15] = cfg.alif_beta;
  t[16] = cfg.alif_rho;
  return t;
}

SnnConfig decode_config(const Tensor& t) {
  SNNSEC_CHECK(t.numel() == 17 && t[0] == kFormatVersion,
               "model file: unsupported snn record (version " << t[0] << ")");
  SnnConfig cfg;
  cfg.v_th = t[1];
  cfg.time_steps = static_cast<std::int64_t>(t[2]);
  cfg.surrogate.kind = static_cast<SurrogateKind>(static_cast<int>(t[3]));
  cfg.surrogate.alpha = t[4];
  cfg.neuron.tau_syn_inv = t[5];
  cfg.neuron.tau_mem_inv = t[6];
  cfg.neuron.v_leak = t[7];
  cfg.neuron.v_reset = t[8];
  cfg.neuron.dt = t[9];
  cfg.encoder = static_cast<EncoderKind>(static_cast<int>(t[10]));
  cfg.encoder_uses_vth = t[11] != 0.0f;
  cfg.weight_gain = t[12];
  cfg.input_gain = t[13];
  cfg.neuron_model = static_cast<NeuronModel>(static_cast<int>(t[14]));
  cfg.alif_beta = t[15];
  cfg.alif_rho = t[16];
  return cfg;
}

}  // namespace

void save_spiking_lenet(const std::string& path, SpikingClassifier& model,
                        const nn::LenetSpec& arch, const SnnConfig& config) {
  std::map<std::string, Tensor> archive;
  archive.emplace("meta/arch", encode_arch(arch));
  archive.emplace("meta/snn", encode_config(config));
  const auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "p%03zu", i);
    archive.emplace(name, params[i]->value);
  }
  tensor::save_archive_file(path, archive);
}

LoadedModel load_spiking_lenet(const std::string& path) {
  const auto archive = tensor::load_archive_file(path);
  SNNSEC_CHECK(archive.count("meta/arch") == 1 &&
                   archive.count("meta/snn") == 1,
               "model file " << path << ": missing metadata records");
  LoadedModel out;
  out.arch = decode_arch(archive.at("meta/arch"));
  out.config = decode_config(archive.at("meta/snn"));

  // Rebuild and overwrite the (arbitrary) fresh initialization.
  util::Rng rng(0);
  out.model = build_spiking_lenet(out.arch, out.config, rng);
  const auto params = out.model->parameters();
  SNNSEC_CHECK(archive.size() == params.size() + 2,
               "model file " << path << ": expected " << params.size()
                             << " parameter tensors, found "
                             << archive.size() - 2);
  for (std::size_t i = 0; i < params.size(); ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "p%03zu", i);
    const auto it = archive.find(name);
    SNNSEC_CHECK(it != archive.end(), "model file: missing tensor " << name);
    SNNSEC_CHECK(it->second.shape() == params[i]->value.shape(),
                 "model file: shape mismatch for "
                     << name << ": " << it->second.shape().to_string()
                     << " vs " << params[i]->value.shape().to_string());
    params[i]->value = it->second;
  }
  return out;
}

}  // namespace snnsec::snn
