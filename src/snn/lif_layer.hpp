// LifLayer: a population of LIF neurons unrolled over the time window T,
// with exact backpropagation-through-time using a surrogate spike
// derivative.
//
// Sequence convention: a time-major tensor [T*N, features...] where rows
// t*N .. (t+1)*N-1 hold time step t for the whole mini-batch. Stateless
// layers (conv/linear/pool) process such tensors unchanged — time is just
// more batch — so a spiking network is an ordinary nn::Sequential with
// LifLayer instances where Norse would place LIFCell/LIFFeedForwardCell.
//
// Forward caches per step: the pre-reset membrane v_decayed and the spikes
// z (what the surrogate and reset-gate backward need). Backward runs
// reverse-time, carrying dL/dv and dL/di across steps:
//
//   tdz_t  = g_z[t] + gv ⊙ (v_reset − vd_t)        (spike + reset gate)
//   gvd    = gv ⊙ (1 − z_t) + tdz_t ⊙ sg(vd_t − v_th)
//   g_x[t] = gi
//   gv'    = gvd (1 − a);   gi' = gvd·a + gi·b
#pragma once

#include "nn/layer.hpp"
#include "obs/probe.hpp"
#include "snn/lif.hpp"

namespace snnsec::snn {

/// Inference-time spike-train fault model: transmission faults on a LIF
/// population's output axons, applied as a deterministic post-pass on the
/// spike tensor of every forward while armed (src/faults drives it for the
/// accuracy-under-fault grid study).
///
/// A "slot" below is one (sample, feature) neuron instance followed through
/// the whole time window. Faults compose: stuck-at masks override the spike
/// train, then each surviving spike is independently dropped or jittered.
/// Backward through an armed layer is NOT supported — the BPTT caches hold
/// the faulted spikes — so arm faults for evaluation forwards only.
struct SpikeFault {
  double drop_prob = 0.0;           ///< P(spike deleted)
  double jitter_prob = 0.0;         ///< P(spike delayed by one time step)
  double stuck_zero_fraction = 0.0; ///< fraction of slots forced silent
  double stuck_one_fraction = 0.0;  ///< fraction of slots firing every step
  std::uint64_t seed = 0;           ///< re-seeded identically per forward

  bool any() const {
    return drop_prob > 0.0 || jitter_prob > 0.0 ||
           stuck_zero_fraction > 0.0 || stuck_one_fraction > 0.0;
  }
  void validate() const;
};

class LifLayer final : public nn::Layer {
 public:
  /// `time_steps` is the paper's time-window T; each forward input must
  /// have dim0 == T * N for some batch size N.
  LifLayer(std::int64_t time_steps, LifParameters params, Surrogate surrogate);

  tensor::Tensor forward(const tensor::Tensor& x, nn::Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "LifLayer"; }
  void clear_cache() override;

  std::int64_t time_steps() const { return time_steps_; }
  const LifParameters& params() const { return params_; }
  const Surrogate& surrogate() const { return surrogate_; }

  /// Mean spike probability per neuron-step in the most recent forward —
  /// diagnostic for dead/saturated cells in the (V_th, T) grid.
  double last_spike_rate() const { return last_spike_rate_; }

  /// Total element count ([T*N, F...] numel) of the most recent forward —
  /// used with last_spike_rate() by the activity/energy analysis.
  std::int64_t last_output_numel() const { return last_output_numel_; }

  /// When the probe is armed, the next forward additionally computes full
  /// obs::ActivityStats (silent/saturated fractions, membrane-potential
  /// histogram) from the per-step state — an O(numel) pass that is skipped
  /// entirely while disarmed, keeping the un-probed hot path unchanged.
  void set_probe(bool on) { probe_ = on; }
  bool probe_armed() const { return probe_; }

  /// Stats from the most recent probed forward (empty before one runs).
  const obs::ActivityStats& last_activity() const { return last_activity_; }

  /// Arm (or, with a default-constructed fault, disarm) the spike-train
  /// fault model applied to every subsequent forward.
  void set_spike_fault(const SpikeFault& fault);
  void clear_spike_fault() { fault_ = SpikeFault{}; }
  const SpikeFault& spike_fault() const { return fault_; }

 private:
  void collect_activity_stats(const tensor::Tensor& z,
                              const tensor::Tensor& vd,
                              std::int64_t per_step);
  void apply_spike_fault(tensor::Tensor& z, std::int64_t per_step) const;

  std::int64_t time_steps_;
  LifParameters params_;
  Surrogate surrogate_;

  // caches (train/attack mode)
  tensor::Tensor v_decayed_;  // [T*N, F...]
  tensor::Tensor spikes_;     // [T*N, F...]
  std::int64_t cached_rows_ = 0;  // N*F per step
  bool have_cache_ = false;
  double last_spike_rate_ = 0.0;
  std::int64_t last_output_numel_ = 0;
  bool probe_ = false;
  obs::ActivityStats last_activity_;
  SpikeFault fault_{};
};

}  // namespace snnsec::snn
