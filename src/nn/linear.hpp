// Fully-connected layer: y = x W^T + b.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace snnsec::nn {

class Linear final : public Layer {
 public:
  /// Weight [out_features, in_features] Kaiming-uniform, bias [out_features].
  Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
         bool bias = true);

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;

  /// Allocation-free eval forward: writes x W^T + b into `y`, reallocating
  /// only when the output geometry changes. Does not touch the backward
  /// cache, so it is safe on the serving hot path; numerics are bit-identical
  /// to forward() (same GEMM entry point, beta = 0 overwrite path).
  void forward_into(const tensor::Tensor& x, tensor::Tensor& y);

  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;
  std::string_view kind() const override { return "Linear"; }
  void clear_cache() override { cached_input_ = tensor::Tensor(); }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  tensor::Tensor cached_input_;
  bool have_cache_ = false;
};

}  // namespace snnsec::nn
