// Fully-connected layer: y = x W^T + b.
#pragma once

#include "nn/layer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/spike_events.hpp"
#include "util/rng.hpp"

namespace snnsec::nn {

class Linear final : public Layer {
 public:
  /// Weight [out_features, in_features] Kaiming-uniform, bias [out_features].
  Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
         bool bias = true);

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;

  /// Allocation-free eval forward: writes x W^T + b into `y`, reallocating
  /// only when the output geometry changes. Does not touch the backward
  /// cache, so it is safe on the serving hot path; numerics are bit-identical
  /// to forward() (same kernel entry points, beta = 0 overwrite path).
  void forward_into(const tensor::Tensor& x, tensor::Tensor& y);

  /// Event-path forward for callers that already hold the input's event
  /// lists (AnytimeRunner builds them once per time slab where the spikes
  /// are produced). `ev` must describe a [N, in_features] operand. Requires
  /// the layer to be resolved to kEvents; bit-identical to forward_into on
  /// the equivalent dense tensor (same per-row kernel, same event order).
  void forward_into_events(const tensor::EventRows& ev, tensor::Tensor& y);

  /// Declare how this layer's input operand is populated (kDense default;
  /// kSparse for spike slabs through the zero-skip kernel; kEvents for the
  /// fully event-driven path). Resolution is STICKY: it must happen before
  /// the first forward and never flips afterwards — kernel choice for a
  /// (layer, operand role) is identical across batch sizes and call counts,
  /// the determinism contract serve and detection are built on. Throws
  /// util::Error if called after the layer has run.
  void set_input_hint(tensor::SparsityHint hint);
  tensor::SparsityHint input_hint() const { return input_hint_; }

  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;
  std::string_view kind() const override { return "Linear"; }
  void clear_cache() override { cached_input_ = tensor::Tensor(); }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  void resolve_kernel();  ///< first-forward latch + tensor.gemm.kernel metric
  void add_bias(tensor::Tensor& y) const;

  std::int64_t in_features_;
  std::int64_t out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  tensor::SparsityHint input_hint_ = tensor::SparsityHint::kDense;
  bool kernel_resolved_ = false;  ///< set at first forward; hint frozen after
  tensor::Tensor cached_input_;
  bool have_cache_ = false;
};

}  // namespace snnsec::nn
