#include "nn/feedforward.hpp"

#include <sstream>

#include "tensor/ops.hpp"

namespace snnsec::nn {

using tensor::Tensor;

std::vector<std::int64_t> Classifier::predict(const Tensor& x) {
  return tensor::argmax_rows(logits(x));
}

FeedforwardClassifier::FeedforwardClassifier(std::unique_ptr<Sequential> net,
                                             std::int64_t num_classes,
                                             std::string description)
    : net_(std::move(net)),
      num_classes_(num_classes),
      description_(std::move(description)) {
  SNNSEC_CHECK(net_ != nullptr, "FeedforwardClassifier: null network");
  SNNSEC_CHECK(num_classes_ > 1, "FeedforwardClassifier: need >= 2 classes");
}

Tensor FeedforwardClassifier::logits(const Tensor& x) {
  return net_->forward(x, Mode::kEval);
}

Tensor FeedforwardClassifier::input_gradient(
    const Tensor& x, const std::vector<std::int64_t>& labels,
    double* loss_out) {
  const Tensor out = net_->forward(x, Mode::kAttack);
  const double loss = loss_.forward(out, labels);
  if (loss_out != nullptr) *loss_out = loss;
  // Parameter grads accumulate too, but attack callers never step an
  // optimizer; training always zero_grad()s first.
  return net_->backward(loss_.backward());
}

Tensor FeedforwardClassifier::output_gradient(const Tensor& x,
                                              const Tensor& cotangent) {
  const Tensor out = net_->forward(x, Mode::kAttack);
  SNNSEC_CHECK(cotangent.shape() == out.shape(),
               "output_gradient: cotangent shape "
                   << cotangent.shape().to_string() << " != logits shape "
                   << out.shape().to_string());
  return net_->backward(cotangent);
}

double FeedforwardClassifier::train_batch(
    const Tensor& x, const std::vector<std::int64_t>& labels,
    Optimizer& optimizer) {
  optimizer.zero_grad();
  const Tensor out = net_->forward(x, Mode::kTrain);
  const double loss = loss_.forward(out, labels);
  net_->backward(loss_.backward());
  optimizer.step();
  return loss;
}

std::vector<Parameter*> FeedforwardClassifier::parameters() {
  return net_->parameters();
}

std::string FeedforwardClassifier::describe() const {
  std::ostringstream oss;
  oss << description_ << '\n' << net_->summary();
  return oss.str();
}

}  // namespace snnsec::nn
