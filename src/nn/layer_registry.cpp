#include "nn/layer_registry.hpp"

#include "nn/sequential.hpp"
#include "util/error.hpp"

namespace snnsec::nn {

const std::vector<LayerKindInfo>& layer_registry() {
  // Append-only: ids are baked into checkpoint fingerprints, so entries are
  // never renumbered or removed, only added. snnsec_lint checks that every
  // final Layer subclass in src/nn + src/snn has a row here.
  static const std::vector<LayerKindInfo> kRegistry = {
      {"ReLU", 1},
      {"Scale", 2},
      {"Sigmoid", 3},
      {"Tanh", 4},
      {"BatchNorm1d", 5},
      {"BatchNorm2d", 6},
      {"Conv2d", 7},
      {"Dropout", 8},
      {"Flatten", 9},
      {"Linear", 10},
      {"AvgPool2d", 11},
      {"MaxPool2d", 12},
      {"Sequential", 13},
      {"LifLayer", 14},
      {"AlifLayer", 15},
      {"PoissonEncoder", 16},
      {"LiReadout", 17},
  };
  return kRegistry;
}

bool is_registered_layer_kind(std::string_view kind) {
  for (const LayerKindInfo& info : layer_registry())
    if (info.kind == kind) return true;
  return false;
}

std::uint16_t layer_kind_id(std::string_view kind) {
  for (const LayerKindInfo& info : layer_registry())
    if (info.kind == kind) return info.id;
  SNNSEC_FAIL("layer kind \"" << std::string(kind)
                              << "\" is not in the serialization registry "
                                 "(src/nn/layer_registry.cpp)");
}

namespace {

void fingerprint_walk(const Layer& layer, std::uint64_t& h) {
  const std::uint16_t id = layer_kind_id(layer.kind());
  h ^= id;
  h *= 0x100000001B3ULL;  // FNV-1a prime, as elsewhere in the tree
  if (const auto* seq = dynamic_cast<const Sequential*>(&layer)) {
    for (std::size_t i = 0; i < seq->size(); ++i)
      fingerprint_walk(seq->layer(i), h);
  }
}

}  // namespace

std::uint64_t architecture_fingerprint(const Layer& root) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  fingerprint_walk(root, h);
  return h;
}

}  // namespace snnsec::nn
