// Classifier: the model interface shared by the CNN baseline and the SNN.
//
// Everything downstream — the attack library, Algorithm 1's explorer, the
// trainer, the figure harnesses — programs against this interface, so the
// paper's CNN-vs-SNN comparisons are one-liners.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/optimizer.hpp"
#include "nn/parameter.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::nn {

class Classifier {
 public:
  virtual ~Classifier() = default;

  Classifier() = default;
  Classifier(const Classifier&) = delete;
  Classifier& operator=(const Classifier&) = delete;

  /// Inference: images [N, C, H, W] -> logits [N, classes].
  virtual tensor::Tensor logits(const tensor::Tensor& x) = 0;

  /// White-box gradient of the mean cross-entropy loss w.r.t. the input
  /// pixels, evaluated with inference semantics (Mode::kAttack). This is
  /// the quantity PGD/FGSM ascend. `loss_out` (optional) receives the loss.
  virtual tensor::Tensor input_gradient(const tensor::Tensor& x,
                                        const std::vector<std::int64_t>& labels,
                                        double* loss_out = nullptr) = 0;

  /// General vector-Jacobian product at the logits: returns
  /// d<cotangent, logits(x)>/dx with inference semantics (Mode::kAttack).
  /// cotangent is [N, classes]. This is the primitive decision-boundary
  /// attacks (DeepFool) build per-class gradients from.
  virtual tensor::Tensor output_gradient(const tensor::Tensor& x,
                                         const tensor::Tensor& cotangent) = 0;

  /// One optimization step on a mini-batch; returns the batch loss.
  virtual double train_batch(const tensor::Tensor& x,
                             const std::vector<std::int64_t>& labels,
                             Optimizer& optimizer) = 0;

  virtual std::vector<Parameter*> parameters() = 0;
  virtual std::int64_t num_classes() const = 0;
  virtual std::string describe() const = 0;

  /// Argmax class predictions (non-virtual convenience).
  std::vector<std::int64_t> predict(const tensor::Tensor& x);
};

}  // namespace snnsec::nn
