#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace snnsec::nn {

using tensor::Tensor;

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<std::int64_t>& labels) {
  SNNSEC_CHECK(logits.ndim() == 2, "SoftmaxCrossEntropy: logits must be [N,C]");
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "SoftmaxCrossEntropy: " << labels.size() << " labels for " << n
                                       << " rows");
  const Tensor logp = tensor::log_softmax_rows(logits);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t l = labels[static_cast<std::size_t>(i)];
    SNNSEC_CHECK(l >= 0 && l < c, "label " << l << " outside [0, " << c << ")");
    loss -= logp[i * c + l];
  }
  probs_ = tensor::exp(logp);
  labels_ = labels;
  have_cache_ = true;
  return loss / static_cast<double>(n);
}

Tensor SoftmaxCrossEntropy::backward() const {
  SNNSEC_CHECK(have_cache_, "SoftmaxCrossEntropy::backward without forward");
  const std::int64_t n = probs_.dim(0);
  const std::int64_t c = probs_.dim(1);
  Tensor grad = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  float* pg = grad.data();
  for (std::int64_t i = 0; i < n; ++i) {
    pg[i * c + labels_[static_cast<std::size_t>(i)]] -= 1.0f;
  }
  grad.mul_scalar_(inv_n);
  return grad;
}

double MseLoss::forward(const Tensor& output,
                        const std::vector<std::int64_t>& labels) {
  SNNSEC_CHECK(output.ndim() == 2, "MseLoss: output must be [N,C]");
  const std::int64_t n = output.dim(0);
  const std::int64_t c = output.dim(1);
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "MseLoss: label count mismatch");
  diff_ = output;
  float* pd = diff_.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t l = labels[static_cast<std::size_t>(i)];
    SNNSEC_CHECK(l >= 0 && l < c, "label " << l << " outside [0, " << c << ")");
    pd[i * c + l] -= 1.0f;
  }
  double loss = 0.0;
  for (std::int64_t i = 0; i < diff_.numel(); ++i)
    loss += static_cast<double>(pd[i]) * pd[i];
  have_cache_ = true;
  return loss / static_cast<double>(n * c);
}

Tensor MseLoss::backward() const {
  SNNSEC_CHECK(have_cache_, "MseLoss::backward without forward");
  Tensor grad = diff_;
  grad.mul_scalar_(2.0f / static_cast<float>(diff_.numel()));
  return grad;
}

}  // namespace snnsec::nn
