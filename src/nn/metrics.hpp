// Evaluation metrics over Classifier models.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/classifier.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::nn {

/// Fraction of correctly classified samples, computed in mini-batches to
/// bound memory. X is [N, C, H, W]; labels has N entries.
double accuracy(Classifier& model, const tensor::Tensor& x,
                const std::vector<std::int64_t>& labels,
                std::int64_t batch_size = 64);

/// Confusion matrix [classes x classes]: rows = true label, cols = predicted.
std::vector<std::vector<std::int64_t>> confusion_matrix(
    Classifier& model, const tensor::Tensor& x,
    const std::vector<std::int64_t>& labels, std::int64_t batch_size = 64);

/// Slice rows [begin, end) of a batch-major tensor (dim 0).
tensor::Tensor slice_batch(const tensor::Tensor& x, std::int64_t begin,
                           std::int64_t end);

}  // namespace snnsec::nn
