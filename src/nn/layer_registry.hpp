// Serialization registry: the closed set of layer kinds a checkpoint may
// contain, plus the architecture fingerprint model_io stores with every
// spiking-LeNet file.
//
// Why a registry: checkpoints restore parameter tensors positionally, so a
// file written by one architecture must never be poured into another. The
// config hash catches most of that, but only describes LenetSpec/SnnConfig —
// a code change that reorders or swaps layers while keeping the spec
// constant would silently misassign weights. The fingerprint hashes the
// actual layer-kind sequence of the built network, closing that hole.
//
// Every concrete nn::Layer subclass must register its kind() string here —
// snnsec_lint rule snnsec-layer-contract fails the build otherwise, and
// save-time SNNSEC_CHECKs refuse to serialize unregistered layers.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "nn/layer.hpp"

namespace snnsec::nn {

struct LayerKindInfo {
  std::string_view kind;  ///< Layer::kind() string, e.g. "Conv2d"
  std::uint16_t id;       ///< stable numeric id (never reuse or renumber)
};

/// The full registry, in id order.
const std::vector<LayerKindInfo>& layer_registry();

/// True when `kind` is a registered serialization identity.
bool is_registered_layer_kind(std::string_view kind);

/// Registry id for `kind`; throws util::Error for unregistered kinds.
std::uint16_t layer_kind_id(std::string_view kind);

/// FNV-1a fingerprint of the layer-kind id sequence under `root`,
/// recursing into Sequential containers. Two models share a fingerprint
/// iff their (flattened) layer stacks have identical kinds in identical
/// order — the property positional weight restore depends on.
std::uint64_t architecture_fingerprint(const Layer& root);

}  // namespace snnsec::nn
