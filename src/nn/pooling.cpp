#include "nn/pooling.hpp"

#include <limits>
#include <sstream>

#include "util/checked.hpp"

namespace snnsec::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {
std::int64_t pooled_size(std::int64_t in, std::int64_t kernel,
                         std::int64_t stride) {
  // Guard before dividing: C++ truncation would turn (in < kernel) into a
  // bogus positive size (e.g. (2-4)/4 + 1 == 1) and an out-of-bounds walk.
  if (in < kernel) return 0;
  return (in - kernel) / stride + 1;
}

// Shared accumulation core for AvgPool2d::forward and forward_into — one
// loop, one summation order, bit-identical results on both entry points.
void avg_pool_planes(const float* px, float* py, std::int64_t planes,
                     std::int64_t h, std::int64_t w, std::int64_t oh,
                     std::int64_t ow, std::int64_t kernel,
                     std::int64_t stride) {
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (std::int64_t nc = 0; nc < planes; ++nc) {
    const float* plane = px + nc * h * w;
    float* out = py + nc * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0f;
        for (std::int64_t ky = 0; ky < kernel; ++ky)
          for (std::int64_t kx = 0; kx < kernel; ++kx)
            acc += plane[(oy * stride + ky) * w + ox * stride + kx];
        out[oy * ow + ox] = acc * inv;
      }
  }
}
}  // namespace

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  SNNSEC_CHECK(kernel_ > 0 && stride_ > 0, "AvgPool2d: bad kernel/stride");
}

Tensor AvgPool2d::forward(const Tensor& x, Mode /*mode*/) {
  SNNSEC_CHECK(x.ndim() == 4, name() << ": expects [N,C,H,W], got "
                                     << x.shape().to_string());
  n_ = x.dim(0);
  c_ = x.dim(1);
  h_ = x.dim(2);
  w_ = x.dim(3);
  const std::int64_t oh = pooled_size(h_, kernel_, stride_);
  const std::int64_t ow = pooled_size(w_, kernel_, stride_);
  SNNSEC_CHECK(oh > 0 && ow > 0, name() << ": input smaller than kernel");
  have_cache_ = true;

  Tensor y(Shape{n_, c_, oh, ow});
  avg_pool_planes(x.data(), y.data(), n_ * c_, h_, w_, oh, ow, kernel_,
                  stride_);
  return y;
}

void AvgPool2d::forward_into(const Tensor& x, Tensor& y) const {
  SNNSEC_CHECK(x.ndim() == 4, name() << ": expects [N,C,H,W], got "
                                     << x.shape().to_string());
  const std::int64_t n = x.dim(0);
  const std::int64_t c = x.dim(1);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  const std::int64_t oh = pooled_size(h, kernel_, stride_);
  const std::int64_t ow = pooled_size(w, kernel_, stride_);
  SNNSEC_CHECK(oh > 0 && ow > 0, name() << ": input smaller than kernel");
  if (y.ndim() != 4 || y.dim(0) != n || y.dim(1) != c || y.dim(2) != oh ||
      y.dim(3) != ow)
    y = Tensor(Shape{n, c, oh, ow});
  avg_pool_planes(x.data(), y.data(), n * c, h, w, oh, ow, kernel_, stride_);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, name() << "::backward without forward");
  const std::int64_t oh = pooled_size(h_, kernel_, stride_);
  const std::int64_t ow = pooled_size(w_, kernel_, stride_);
  SNNSEC_CHECK(grad_out.ndim() == 4 && grad_out.dim(0) == n_ &&
                   grad_out.dim(1) == c_ && grad_out.dim(2) == oh &&
                   grad_out.dim(3) == ow,
               name() << "::backward: bad grad shape "
                      << grad_out.shape().to_string());
  Tensor dx(Shape{n_, c_, h_, w_});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const float* pg = grad_out.data();
  float* pd = dx.data();
  for (std::int64_t nc = 0; nc < n_ * c_; ++nc) {
    float* plane = pd + nc * h_ * w_;
    const float* gout = pg + nc * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float g = gout[oy * ow + ox] * inv;
        for (std::int64_t ky = 0; ky < kernel_; ++ky)
          for (std::int64_t kx = 0; kx < kernel_; ++kx)
            plane[(oy * stride_ + ky) * w_ + ox * stride_ + kx] += g;
      }
  }
  return dx;
}

std::string AvgPool2d::name() const {
  std::ostringstream oss;
  oss << "AvgPool2d(" << kernel_ << ", stride=" << stride_ << ")";
  return oss.str();
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  SNNSEC_CHECK(kernel_ > 0 && stride_ > 0, "MaxPool2d: bad kernel/stride");
}

Tensor MaxPool2d::forward(const Tensor& x, Mode mode) {
  SNNSEC_CHECK(x.ndim() == 4, name() << ": expects [N,C,H,W], got "
                                     << x.shape().to_string());
  n_ = x.dim(0);
  c_ = x.dim(1);
  h_ = x.dim(2);
  w_ = x.dim(3);
  const std::int64_t oh = pooled_size(h_, kernel_, stride_);
  const std::int64_t ow = pooled_size(w_, kernel_, stride_);
  SNNSEC_CHECK(oh > 0 && ow > 0, name() << ": input smaller than kernel");

  Tensor y(Shape{n_, c_, oh, ow});
  const bool keep = cache_enabled(mode);
  if (keep) argmax_.assign(static_cast<std::size_t>(n_ * c_ * oh * ow), 0);
  have_cache_ = keep;

  const float* px = x.data();
  float* py = y.data();
  for (std::int64_t nc = 0; nc < n_ * c_; ++nc) {
    const float* plane = px + nc * h_ * w_;
    float* out = py + nc * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = 0;
        for (std::int64_t ky = 0; ky < kernel_; ++ky)
          for (std::int64_t kx = 0; kx < kernel_; ++kx) {
            const std::int64_t idx =
                (oy * stride_ + ky) * w_ + ox * stride_ + kx;
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = idx;
            }
          }
        out[oy * ow + ox] = best;
        if (keep)
          argmax_[static_cast<std::size_t>(nc * oh * ow + oy * ow + ox)] =
              nc * h_ * w_ + best_idx;
      }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, name() << "::backward without train-mode forward");
  const std::int64_t oh = pooled_size(h_, kernel_, stride_);
  const std::int64_t ow = pooled_size(w_, kernel_, stride_);
  SNNSEC_CHECK(grad_out.numel() ==
                   static_cast<std::int64_t>(argmax_.size()) &&
                   grad_out.dim(2) == oh && grad_out.dim(3) == ow,
               name() << "::backward: bad grad shape "
                      << grad_out.shape().to_string());
  Tensor dx(Shape{n_, c_, h_, w_});
  const float* pg = grad_out.data();
  float* pd = dx.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    // The argmax scatter is the one indirect write in the backward pass: a
    // corrupted index would smear gradient into a neighboring image plane.
    SNNSEC_DCHECK(argmax_[i] >= 0 && argmax_[i] < dx.numel(),
                  name() << "::backward: argmax index " << argmax_[i]
                         << " outside input of " << dx.numel());
    pd[argmax_[i]] += pg[static_cast<std::int64_t>(i)];
  }
  return dx;
}

std::string MaxPool2d::name() const {
  std::ostringstream oss;
  oss << "MaxPool2d(" << kernel_ << ", stride=" << stride_ << ")";
  return oss.str();
}

}  // namespace snnsec::nn
