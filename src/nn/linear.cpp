#include "nn/linear.hpp"

#include <sstream>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/checked.hpp"

namespace snnsec::nn {

using tensor::Shape;
using tensor::Tensor;
using tensor::Trans;

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               util::Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("weight",
              kaiming_uniform(Shape{out_features, in_features}, in_features,
                              rng)),
      bias_("bias", bias ? bias_uniform(out_features, in_features, rng)
                         : Tensor(Shape{out_features})) {
  SNNSEC_CHECK(in_features > 0 && out_features > 0,
               "Linear: feature counts must be positive");
}

Tensor Linear::forward(const Tensor& x, Mode mode) {
  if (cache_enabled(mode)) {
    SNNSEC_CHECK(x.ndim() == 2 && x.dim(1) == in_features_,
                 "Linear(" << in_features_ << "->" << out_features_
                           << "): bad input shape " << x.shape().to_string());
    cached_input_ = x;
    have_cache_ = true;
  }
  Tensor y;
  forward_into(x, y);
  return y;
}

void Linear::forward_into(const Tensor& x, Tensor& y) {
  SNNSEC_CHECK(x.ndim() == 2 && x.dim(1) == in_features_,
               "Linear(" << in_features_ << "->" << out_features_
                         << "): bad input shape " << x.shape().to_string());
  const std::int64_t n = x.dim(0);
  // Dim-wise compare so a warm steady state never reallocates.
  if (y.ndim() != 2 || y.dim(0) != n || y.dim(1) != out_features_)
    y = Tensor(Shape{n, out_features_});
  // beta = 0 is the kernels' overwrite path, so stale y contents are
  // ignored and the result is bit-identical to matmul into a fresh tensor.
  tensor::gemm(Trans::kNo, Trans::kYes, 1.0f, x, weight_.value, 0.0f, y);
  if (has_bias_) {
    float* py = y.data();
    const float* pb = bias_.value.data();
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < out_features_; ++j)
        py[i * out_features_ + j] += pb[j];
  }
}

Tensor Linear::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, "Linear::backward without cached forward");
  SNNSEC_CHECK(grad_out.ndim() == 2 && grad_out.dim(1) == out_features_ &&
                   grad_out.dim(0) == cached_input_.dim(0),
               "Linear::backward: bad grad shape "
                   << grad_out.shape().to_string());
  // dW += dY^T X ; db += colsum(dY) ; dX = dY W
  tensor::gemm(Trans::kYes, Trans::kNo, 1.0f, grad_out, cached_input_, 1.0f,
               weight_.grad);
  if (has_bias_) {
    const std::int64_t n = grad_out.dim(0);
    const float* pg = grad_out.data();
    float* pb = bias_.grad.data();
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < out_features_; ++j)
        pb[j] += pg[i * out_features_ + j];
  }
  return tensor::matmul(grad_out, weight_.value, Trans::kNo, Trans::kNo);
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Linear::name() const {
  std::ostringstream oss;
  oss << "Linear(" << in_features_ << "->" << out_features_
      << (has_bias_ ? "" : ", no bias") << ")";
  return oss.str();
}

}  // namespace snnsec::nn
