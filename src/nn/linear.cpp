#include "nn/linear.hpp"

#include <sstream>

#include "nn/init.hpp"
#include "obs/metrics.hpp"
#include "tensor/ops.hpp"
#include "util/checked.hpp"
#include "util/workspace.hpp"

namespace snnsec::nn {

using tensor::Shape;
using tensor::Tensor;
using tensor::Trans;

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               util::Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("weight",
              kaiming_uniform(Shape{out_features, in_features}, in_features,
                              rng)),
      bias_("bias", bias ? bias_uniform(out_features, in_features, rng)
                         : Tensor(Shape{out_features})) {
  SNNSEC_CHECK(in_features > 0 && out_features > 0,
               "Linear: feature counts must be positive");
}

Tensor Linear::forward(const Tensor& x, Mode mode) {
  if (cache_enabled(mode)) {
    SNNSEC_CHECK(x.ndim() == 2 && x.dim(1) == in_features_,
                 "Linear(" << in_features_ << "->" << out_features_
                           << "): bad input shape " << x.shape().to_string());
    cached_input_ = x;
    have_cache_ = true;
  }
  Tensor y;
  forward_into(x, y);
  return y;
}

void Linear::set_input_hint(tensor::SparsityHint hint) {
  SNNSEC_CHECK(!kernel_resolved_,
               "Linear::set_input_hint after the layer has run — kernel "
               "resolution is sticky (one kernel per operand role for the "
               "layer's lifetime); build-time declaration only");
  input_hint_ = hint;
}

void Linear::resolve_kernel() {
  if (kernel_resolved_) return;
  kernel_resolved_ = true;
  // One increment per layer at resolution time: the counters expose which
  // kernels the deployed model actually resolved to, without any per-call
  // hot-path cost.
  switch (input_hint_) {
    case tensor::SparsityHint::kDense:
      SNNSEC_COUNTER_ADD("tensor.gemm.kernel.dense", 1);
      break;
    case tensor::SparsityHint::kSparse:
      SNNSEC_COUNTER_ADD("tensor.gemm.kernel.sparse", 1);
      break;
    case tensor::SparsityHint::kEvents:
      SNNSEC_COUNTER_ADD("tensor.gemm.kernel.events", 1);
      break;
  }
}

void Linear::add_bias(Tensor& y) const {
  if (!has_bias_) return;
  const std::int64_t n = y.dim(0);
  float* py = y.data();
  const float* pb = bias_.value.data();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < out_features_; ++j)
      py[i * out_features_ + j] += pb[j];
}

void Linear::forward_into(const Tensor& x, Tensor& y) {
  SNNSEC_CHECK(x.ndim() == 2 && x.dim(1) == in_features_,
               "Linear(" << in_features_ << "->" << out_features_
                         << "): bad input shape " << x.shape().to_string());
  resolve_kernel();
  const std::int64_t n = x.dim(0);
  // Dim-wise compare so a warm steady state never reallocates.
  if (y.ndim() != 2 || y.dim(0) != n || y.dim(1) != out_features_)
    y = Tensor(Shape{n, out_features_});
  // beta = 0 is the kernels' overwrite path, so stale y contents are
  // ignored and the result is bit-identical to matmul into a fresh tensor.
  if (input_hint_ == tensor::SparsityHint::kEvents) {
    // Compress the spike operand and event-accumulate weight rows. Building
    // the lists here (when no producer handed them over) costs one scan of
    // x and is bit-identical to the producer-built path: both emit events
    // in increasing column order and the kernel is per-row.
    util::Workspace& ws = util::Workspace::local();
    util::Workspace::Scope scope(ws);
    const tensor::EventRows ev =
        tensor::build_event_rows(x.data(), in_features_, n, in_features_, ws);
    tensor::gemm_events(ev, Trans::kYes, out_features_, 1.0f,
                        weight_.value.data(), in_features_, 0.0f, y.data(),
                        out_features_);
  } else {
    tensor::gemm(Trans::kNo, Trans::kYes, 1.0f, x, weight_.value, 0.0f, y,
                 input_hint_);
  }
  add_bias(y);
}

void Linear::forward_into_events(const tensor::EventRows& ev, Tensor& y) {
  SNNSEC_CHECK(input_hint_ == tensor::SparsityHint::kEvents,
               "Linear::forward_into_events on a layer resolved to a dense "
               "kernel — the caller-built event lists would be dead weight");
  SNNSEC_CHECK(ev.cols == in_features_,
               "Linear(" << in_features_ << "->" << out_features_
                         << "): event operand has " << ev.cols
                         << " columns");
  resolve_kernel();
  const std::int64_t n = ev.rows;
  if (y.ndim() != 2 || y.dim(0) != n || y.dim(1) != out_features_)
    y = Tensor(Shape{n, out_features_});
  tensor::gemm_events(ev, Trans::kYes, out_features_, 1.0f,
                      weight_.value.data(), in_features_, 0.0f, y.data(),
                      out_features_);
  add_bias(y);
}

Tensor Linear::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, "Linear::backward without cached forward");
  SNNSEC_CHECK(grad_out.ndim() == 2 && grad_out.dim(1) == out_features_ &&
                   grad_out.dim(0) == cached_input_.dim(0),
               "Linear::backward: bad grad shape "
                   << grad_out.shape().to_string());
  // dW += dY^T X ; db += colsum(dY) ; dX = dY W
  tensor::gemm(Trans::kYes, Trans::kNo, 1.0f, grad_out, cached_input_, 1.0f,
               weight_.grad);
  if (has_bias_) {
    const std::int64_t n = grad_out.dim(0);
    const float* pg = grad_out.data();
    float* pb = bias_.grad.data();
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < out_features_; ++j)
        pb[j] += pg[i * out_features_ + j];
  }
  return tensor::matmul(grad_out, weight_.value, Trans::kNo, Trans::kNo);
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Linear::name() const {
  std::ostringstream oss;
  oss << "Linear(" << in_features_ << "->" << out_features_
      << (has_bias_ ? "" : ", no bias") << ")";
  return oss.str();
}

}  // namespace snnsec::nn
