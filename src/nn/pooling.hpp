// Spatial pooling layers over [N, C, H, W] tensors.
//
// AvgPool2d is the pooling used inside the spiking network (averaging spike
// counts keeps the surrogate-gradient path smooth); MaxPool2d is provided
// for the CNN baseline and caches argmax positions for exact backward
// routing.
#pragma once

#include "nn/layer.hpp"

namespace snnsec::nn {

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::int64_t kernel, std::int64_t stride = -1);

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;

  /// Allocation-free eval forward: pools into `y`, reallocating only when
  /// the output geometry changes. Shares the accumulation loop with
  /// forward(), so results are bit-identical; does not touch the backward
  /// geometry cache (serving hot path).
  void forward_into(const tensor::Tensor& x, tensor::Tensor& y) const;

  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "AvgPool2d"; }
  void clear_cache() override {}

 private:
  std::int64_t kernel_;
  std::int64_t stride_;
  // geometry cache for backward
  std::int64_t n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  bool have_cache_ = false;
};

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int64_t kernel, std::int64_t stride = -1);

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "MaxPool2d"; }
  void clear_cache() override { argmax_.clear(); }

 private:
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
  bool have_cache_ = false;
};

}  // namespace snnsec::nn
