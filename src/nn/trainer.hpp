// Trainer: generic mini-batch training loop over the Classifier interface.
//
// Works identically for the CNN baseline and the SNN (whose train_batch
// runs BPTT internally) — Algorithm 1's per-cell Train(S_ij) is one
// Trainer::fit call.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/classifier.hpp"
#include "nn/schedule.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace snnsec::nn {

enum class OptimizerKind { kSgd, kAdam };

struct TrainConfig {
  std::int64_t epochs = 3;
  std::int64_t batch_size = 32;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double lr = 1e-3;
  double momentum = 0.9;        ///< SGD only
  double weight_decay = 0.0;
  std::uint64_t shuffle_seed = 1234;
  bool verbose = false;         ///< log per-epoch metrics
  LrSchedule schedule{};        ///< per-epoch learning-rate schedule
  double grad_clip_norm = 0.0;  ///< global-norm gradient clip (0 = off)

  // Divergence sentinels. A (V_th, T) cell trained under a bad seed can
  // blow up to NaN/Inf or an exploding loss; fit() detects both and throws
  // util::DivergenceError so the caller (the explorer's retry layer) can
  // re-seed instead of silently caching garbage weights.
  bool check_finite_loss = true;  ///< throw on NaN/Inf batch loss
  /// Throw when an epoch's mean loss exceeds this multiple of the first
  /// epoch's loss (0 disables the explosion sentinel).
  double divergence_loss_factor = 100.0;
  /// Wall-clock budget for one fit() call in seconds; exceeding it throws
  /// util::TimeoutError (0 = unlimited).
  double max_seconds = 0.0;
};

struct EpochStats {
  std::int64_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;  ///< accuracy over the training set (sampled)
  double learning_rate = 0.0;   ///< rate used for this epoch
  double seconds = 0.0;
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
  double final_loss() const {
    return epochs.empty() ? 0.0 : epochs.back().train_loss;
  }
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  /// Train `model` on (x, labels). Returns per-epoch statistics.
  /// `on_epoch` (optional) is invoked after each epoch (early-stop hooks,
  /// logging, ...); returning false stops training.
  /// Throws util::DivergenceError when a sentinel fires (NaN/Inf batch
  /// loss, epoch-loss explosion) and util::TimeoutError when the
  /// `max_seconds` wall-clock budget is exceeded.
  TrainHistory fit(
      Classifier& model, const tensor::Tensor& x,
      const std::vector<std::int64_t>& labels,
      const std::function<bool(const EpochStats&)>& on_epoch = nullptr);

  const TrainConfig& config() const { return config_; }

 private:
  TrainConfig config_;
};

}  // namespace snnsec::nn
