#include "nn/dropout.hpp"

#include <sstream>

namespace snnsec::nn {

using tensor::Tensor;

Dropout::Dropout(double p, util::Rng rng) : p_(p), rng_(rng) {
  SNNSEC_CHECK(p >= 0.0 && p < 1.0, "Dropout: p must be in [0, 1), got " << p);
}

Tensor Dropout::forward(const Tensor& x, Mode mode) {
  // NOLINTNEXTLINE(snnsec-float-eq): p is an exact user-set config value; 0 disables the layer entirely
  if (!stochastic_enabled(mode) || p_ == 0.0) {
    identity_pass_ = true;
    have_cache_ = true;
    return x;
  }
  identity_pass_ = false;
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float* px = x.data();
  float* pm = mask_.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float keep = rng_.bernoulli(p_) ? 0.0f : scale;
    pm[i] = keep;
    py[i] = px[i] * keep;
  }
  have_cache_ = true;
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, "Dropout::backward without forward");
  if (identity_pass_) return grad_out;
  SNNSEC_CHECK(grad_out.shape() == mask_.shape(),
               "Dropout::backward shape mismatch");
  Tensor dx = grad_out;
  dx.mul_(mask_);
  return dx;
}

std::string Dropout::name() const {
  std::ostringstream oss;
  oss << "Dropout(p=" << p_ << ")";
  return oss.str();
}

}  // namespace snnsec::nn
