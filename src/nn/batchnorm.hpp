// Batch normalization (Ioffe & Szegedy, 2015).
//
// BatchNorm2d normalizes each channel of a [N, C, H, W] tensor over
// (N, H, W); BatchNorm1d normalizes each feature of [N, F] over N. In
// train mode batch statistics are used and running estimates updated; in
// eval/attack mode the running estimates are used (so white-box gradients
// see the deployed, frozen normalization — the standard attack setting).
#pragma once

#include "nn/layer.hpp"

namespace snnsec::nn {

namespace detail {

/// Shared implementation: normalization over groups of `inner` elements
/// repeated `outer` times per channel (2d: inner = H*W, outer = N;
/// 1d: inner = 1, outer = N).
class BatchNormBase : public Layer {
 public:
  BatchNormBase(std::int64_t num_features, double momentum, double eps);

  std::vector<Parameter*> parameters() override;
  void clear_cache() override;

  const tensor::Tensor& running_mean() const { return running_mean_; }
  const tensor::Tensor& running_var() const { return running_var_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 protected:
  /// Channel layout of `x`: flat index = (n * C + c) * inner + j.
  tensor::Tensor forward_impl(const tensor::Tensor& x, Mode mode,
                              std::int64_t channels, std::int64_t inner);
  tensor::Tensor backward_impl(const tensor::Tensor& grad_out);

  std::int64_t num_features_;
  double momentum_;
  double eps_;
  Parameter gamma_;
  Parameter beta_;
  tensor::Tensor running_mean_;
  tensor::Tensor running_var_;

  // caches for backward (train/attack forward)
  tensor::Tensor x_hat_;        // normalized input
  std::vector<float> inv_std_;  // per channel
  std::int64_t cached_inner_ = 0;
  std::int64_t cached_batch_ = 0;
  bool used_batch_stats_ = false;
  bool have_cache_ = false;
};

}  // namespace detail

class BatchNorm2d final : public detail::BatchNormBase {
 public:
  explicit BatchNorm2d(std::int64_t channels, double momentum = 0.1,
                       double eps = 1e-5)
      : BatchNormBase(channels, momentum, eps) {}

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "BatchNorm2d"; }
};

class BatchNorm1d final : public detail::BatchNormBase {
 public:
  explicit BatchNorm1d(std::int64_t features, double momentum = 0.1,
                       double eps = 1e-5)
      : BatchNormBase(features, momentum, eps) {}

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "BatchNorm1d"; }
};

}  // namespace snnsec::nn
