#include "nn/conv2d.hpp"

#include <sstream>

#include "nn/init.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace snnsec::nn {

using tensor::ConvGeometry;
using tensor::Shape;
using tensor::Tensor;
using tensor::Trans;

Conv2d::Conv2d(Conv2dSpec spec, util::Rng& rng, bool bias)
    : spec_(spec),
      has_bias_(bias),
      weight_("weight",
              kaiming_uniform(
                  Shape{spec.out_channels,
                        spec.in_channels * spec.kernel * spec.kernel},
                  spec.in_channels * spec.kernel * spec.kernel, rng)),
      bias_("bias",
            bias ? bias_uniform(spec.out_channels,
                                spec.in_channels * spec.kernel * spec.kernel,
                                rng)
                 : Tensor(Shape{spec.out_channels})) {
  SNNSEC_CHECK(spec.in_channels > 0 && spec.out_channels > 0,
               "Conv2d: channel counts must be positive");
  SNNSEC_CHECK(spec.kernel > 0 && spec.stride > 0 && spec.padding >= 0,
               "Conv2d: bad kernel/stride/padding");
}

ConvGeometry Conv2d::geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g;
  g.channels = spec_.in_channels;
  g.height = h;
  g.width = w;
  g.kernel_h = g.kernel_w = spec_.kernel;
  g.stride_h = g.stride_w = spec_.stride;
  g.pad_h = g.pad_w = spec_.padding;
  g.validate();
  return g;
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  SNNSEC_CHECK(x.ndim() == 4 && x.dim(1) == spec_.in_channels,
               name() << ": bad input shape " << x.shape().to_string());
  const std::int64_t n = x.dim(0);
  const ConvGeometry g = geometry(x.dim(2), x.dim(3));
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t patch = g.patch_size();
  const std::int64_t image_size = g.channels * g.height * g.width;

  Tensor columns(Shape{patch, n * ohw});
  {
    SNNSEC_TRACE_SCOPE("conv.im2col");
    float* pcol = columns.data();
    const float* px = x.data();
    util::parallel_for(0, n, [&](std::int64_t i) {
      tensor::im2col_ld(g, px + i * image_size, pcol, n * ohw, i * ohw);
    });
  }

  // raw = W [Cout, patch] x columns [patch, N*OHW] -> [Cout, N*OHW]
  Tensor raw = tensor::matmul(weight_.value, columns);

  // Reorder [Cout][n][ohw] -> [n][Cout][ohw] and add bias.
  Tensor y(Shape{n, spec_.out_channels, oh, ow});
  {
    const float* praw = raw.data();
    float* py = y.data();
    const float* pb = bias_.value.data();
    for (std::int64_t co = 0; co < spec_.out_channels; ++co) {
      const float b = has_bias_ ? pb[co] : 0.0f;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* src = praw + co * (n * ohw) + i * ohw;
        float* dst = py + (i * spec_.out_channels + co) * ohw;
        for (std::int64_t j = 0; j < ohw; ++j) dst[j] = src[j] + b;
      }
    }
  }

  if (cache_enabled(mode)) {
    cached_columns_ = std::move(columns);
    cached_geom_ = g;
    cached_batch_ = n;
    have_cache_ = true;
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, name() << "::backward without cached forward");
  const ConvGeometry& g = cached_geom_;
  const std::int64_t n = cached_batch_;
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t image_size = g.channels * g.height * g.width;
  SNNSEC_CHECK(grad_out.ndim() == 4 && grad_out.dim(0) == n &&
                   grad_out.dim(1) == spec_.out_channels &&
                   grad_out.dim(2) == oh && grad_out.dim(3) == ow,
               name() << "::backward: bad grad shape "
                      << grad_out.shape().to_string());

  // Reorder grad to GEMM layout: G [Cout, N*OHW].
  Tensor g_mat(Shape{spec_.out_channels, n * ohw});
  {
    const float* pg = grad_out.data();
    float* pm = g_mat.data();
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t co = 0; co < spec_.out_channels; ++co) {
        const float* src = pg + (i * spec_.out_channels + co) * ohw;
        float* dst = pm + co * (n * ohw) + i * ohw;
        for (std::int64_t j = 0; j < ohw; ++j) dst[j] = src[j];
      }
  }

  // dW += G x columns^T : [Cout, patch]
  tensor::gemm(Trans::kNo, Trans::kYes, 1.0f, g_mat, cached_columns_, 1.0f,
               weight_.grad);

  if (has_bias_) {
    float* pb = bias_.grad.data();
    const float* pm = g_mat.data();
    for (std::int64_t co = 0; co < spec_.out_channels; ++co) {
      double acc = 0.0;
      const float* row = pm + co * (n * ohw);
      for (std::int64_t j = 0; j < n * ohw; ++j) acc += row[j];
      pb[co] += static_cast<float>(acc);
    }
  }

  // dColumns = W^T x G : [patch, N*OHW]; then col2im per sample.
  Tensor dcol = tensor::matmul(weight_.value, g_mat, Trans::kYes, Trans::kNo);
  Tensor dx(Shape{n, g.channels, g.height, g.width});
  {
    SNNSEC_TRACE_SCOPE("conv.col2im");
    const float* pd = dcol.data();
    float* px = dx.data();
    util::parallel_for(0, n, [&](std::int64_t i) {
      tensor::col2im_ld(g, pd, px + i * image_size, n * ohw, i * ohw);
    });
  }
  return dx;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Conv2d::name() const {
  std::ostringstream oss;
  oss << "Conv2d(" << spec_.in_channels << "->" << spec_.out_channels << ", "
      << spec_.kernel << "x" << spec_.kernel << ", stride=" << spec_.stride
      << ", pad=" << spec_.padding << ")";
  return oss.str();
}

void Conv2d::clear_cache() {
  cached_columns_ = Tensor();
  have_cache_ = false;
}

}  // namespace snnsec::nn
