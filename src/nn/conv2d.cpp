// SNNSEC_HOT — steady-state kernel file: naked heap allocation and
// container growth are forbidden here (snnsec_lint snnsec-hot-alloc);
// scratch memory comes from util::Workspace so warmed-up runs are
// zero-alloc (asserted by bench_runner's operator-new hook).
#include "nn/conv2d.hpp"

#include <sstream>

#include "nn/init.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/spike_events.hpp"
#include "util/checked.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace snnsec::nn {

using tensor::ConvGeometry;
using tensor::Shape;
using tensor::Tensor;
using tensor::Trans;

Conv2d::Conv2d(Conv2dSpec spec, util::Rng& rng, bool bias)
    : spec_(spec),
      has_bias_(bias),
      weight_("weight",
              kaiming_uniform(
                  Shape{spec.out_channels,
                        spec.in_channels * spec.kernel * spec.kernel},
                  spec.in_channels * spec.kernel * spec.kernel, rng)),
      bias_("bias",
            bias ? bias_uniform(spec.out_channels,
                                spec.in_channels * spec.kernel * spec.kernel,
                                rng)
                 : Tensor(Shape{spec.out_channels})) {
  SNNSEC_CHECK(spec.in_channels > 0 && spec.out_channels > 0,
               "Conv2d: channel counts must be positive");
  SNNSEC_CHECK(spec.kernel > 0 && spec.stride > 0 && spec.padding >= 0,
               "Conv2d: bad kernel/stride/padding");
}

ConvGeometry Conv2d::geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g;
  g.channels = spec_.in_channels;
  g.height = h;
  g.width = w;
  g.kernel_h = g.kernel_w = spec_.kernel;
  g.stride_h = g.stride_w = spec_.stride;
  g.pad_h = g.pad_w = spec_.padding;
  g.validate();
  return g;
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  Tensor y;
  forward_into(x, y, mode);
  return y;
}

void Conv2d::set_input_hint(tensor::SparsityHint hint) {
  SNNSEC_CHECK(!kernel_resolved_,
               name() << ": set_input_hint after the layer has run — kernel "
                         "resolution is sticky (one kernel per operand role "
                         "for the layer's lifetime); build-time declaration "
                         "only");
  SNNSEC_CHECK(hint != tensor::SparsityHint::kSparse,
               name() << ": kSparse is meaningless for conv — the im2col "
                         "lowering puts the spike sparsity in the B operand "
                         "where the zero-skip A kernel cannot reach it; "
                         "declare kEvents instead");
  input_hint_ = hint;
}

void Conv2d::resolve_kernel() {
  if (kernel_resolved_) return;
  kernel_resolved_ = true;
  if (input_hint_ == tensor::SparsityHint::kEvents)
    SNNSEC_COUNTER_ADD("tensor.gemm.kernel.events", 1);
  else
    SNNSEC_COUNTER_ADD("tensor.gemm.kernel.dense", 1);
}

/// Event-driven eval forward: scatter-accumulate value-scaled W^T rows into
/// the transposed output for every nonzero input pixel —
///   Ct [N*OHW, Cout] += x[i, c, iy, ix] * W^T[patch position, :]
/// across the receptive-field windows each pixel occupies — then fuse
/// bias + reorder into [N, Cout, OH, OW]. The transposed formulation is
/// what moves the spike sparsity to the operand the kernel walks; the
/// classic im2col lowering leaves it in B where no row skip can see it,
/// and materializing per-patch event lists (build_conv_events) would
/// duplicate every spike up to KH*KW-fold.
void Conv2d::forward_events(const Tensor& x, Tensor& y,
                            const ConvGeometry& g) {
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t cout = spec_.out_channels;

  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  float* pct = ws.alloc<float>(static_cast<std::size_t>(n * ohw * cout));
  {
    SNNSEC_TRACE_SCOPE("conv.event_scatter");
    tensor::conv_events(g, x.data(), n, weight_.value.data(), cout, pct, ws);
  }

  if (y.ndim() != 4 || y.dim(0) != n || y.dim(1) != cout || y.dim(2) != oh ||
      y.dim(3) != ow)
    y = Tensor(Shape{n, cout, oh, ow});
  {
    SNNSEC_TRACE_SCOPE("conv.bias_reorder");
    float* py = y.data();
    const float* pb = bias_.value.data();
    const bool has_bias = has_bias_;
    util::parallel_for_chunked(
        0, cout, [&, py, pb, has_bias, cout](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t co = lo; co < hi; ++co) {
            const float b = has_bias ? pb[co] : 0.0f;
            for (std::int64_t i = 0; i < n; ++i) {
              const float* src = pct + i * ohw * cout + co;
              float* dst = py + (i * cout + co) * ohw;
              for (std::int64_t j = 0; j < ohw; ++j)
                dst[j] = src[j * cout] + b;
            }
          }
        });
  }
}

void Conv2d::forward_into(const Tensor& x, Tensor& y, Mode mode) {
  SNNSEC_CHECK(x.ndim() == 4 && x.dim(1) == spec_.in_channels,
               name() << ": bad input shape " << x.shape().to_string());
  const std::int64_t n = x.dim(0);
  const ConvGeometry g = geometry(x.dim(2), x.dim(3));
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t patch = g.patch_size();
  const std::int64_t image_size = g.channels * g.height * g.width;
  const bool caching = cache_enabled(mode);
  resolve_kernel();
  if (!caching && input_hint_ == tensor::SparsityHint::kEvents) {
    // Event path is eval-only: train/attack forwards must materialize the
    // dense column matrix anyway (backward consumes it), so they keep the
    // classic lowering. The choice is fixed per (layer, mode) — no data
    // probe, no mid-run flips.
    forward_events(x, y, g);
    return;
  }

  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);

  // Column matrix [patch, N*OHW]: workspace scratch in eval mode; in train
  // mode it must survive until backward(), so it lives in the member buffer,
  // reallocated only when the lowering shape changes.
  float* pcol;
  if (caching) {
    // Dim-wise compare (not Shape construction) so the steady state stays
    // allocation-free.
    if (cached_columns_.ndim() != 2 || cached_columns_.dim(0) != patch ||
        cached_columns_.dim(1) != n * ohw)
      cached_columns_ = Tensor(Shape{patch, n * ohw});
    pcol = cached_columns_.data();
  } else {
    pcol = ws.alloc<float>(static_cast<std::size_t>(patch * n * ohw));
  }
  {
    SNNSEC_TRACE_SCOPE("conv.im2col");
    const float* px = x.data();
    util::parallel_for(0, n, [&](std::int64_t i) {
      tensor::im2col_ld(g, px + i * image_size, pcol, n * ohw, i * ohw);
    });
  }

  // raw = W [Cout, patch] x columns [patch, N*OHW] -> [Cout, N*OHW], GEMM'd
  // straight into workspace memory. In this lowering op(A) is the WEIGHT
  // matrix — dense by role whatever the input hint says — so the layer's
  // event resolution is applied above by switching the lowering itself, not
  // by re-tagging this operand.
  const tensor::SparsityHint weight_role = tensor::SparsityHint::kDense;
  float* praw =
      ws.alloc<float>(static_cast<std::size_t>(spec_.out_channels * n * ohw));
  tensor::gemm_raw(Trans::kNo, Trans::kNo, spec_.out_channels, n * ohw, patch,
                   1.0f, weight_.value.data(), patch, pcol, n * ohw, 0.0f,
                   praw, n * ohw, weight_role);

  // Fused bias-add + reorder [Cout][n][ohw] -> [n][Cout][ohw], parallel over
  // output channels (each channel writes disjoint rows of y).
  if (y.ndim() != 4 || y.dim(0) != n || y.dim(1) != spec_.out_channels ||
      y.dim(2) != oh || y.dim(3) != ow)
    y = Tensor(Shape{n, spec_.out_channels, oh, ow});
  {
    SNNSEC_TRACE_SCOPE("conv.bias_reorder");
    float* py = y.data();
    const float* pb = bias_.value.data();
    const bool has_bias = has_bias_;
    const std::int64_t cout = spec_.out_channels;
    util::parallel_for_chunked(
        0, cout, [&, py, pb, has_bias, cout](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t co = lo; co < hi; ++co) {
            const float b = has_bias ? pb[co] : 0.0f;
            for (std::int64_t i = 0; i < n; ++i) {
              const float* src = praw + co * (n * ohw) + i * ohw;
              float* dst = py + (i * cout + co) * ohw;
              for (std::int64_t j = 0; j < ohw; ++j) dst[j] = src[j] + b;
            }
          }
        });
  }

  if (caching) {
    cached_geom_ = g;
    cached_batch_ = n;
    have_cache_ = true;
  }
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, name() << "::backward without cached forward");
  const ConvGeometry& g = cached_geom_;
  const std::int64_t n = cached_batch_;
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t image_size = g.channels * g.height * g.width;
  SNNSEC_CHECK(grad_out.ndim() == 4 && grad_out.dim(0) == n &&
                   grad_out.dim(1) == spec_.out_channels &&
                   grad_out.dim(2) == oh && grad_out.dim(3) == ow,
               name() << "::backward: bad grad shape "
                      << grad_out.shape().to_string());

  const std::int64_t patch = g.patch_size();
  const std::int64_t cout = spec_.out_channels;
  // The lowered columns cached by forward must still match this geometry;
  // a stale cache (e.g. forward ran again with another batch size between
  // the pair) would silently compute garbage gradients.
  SNNSEC_ASSERT_SHAPE(cached_columns_, Shape{patch, n * ohw});
  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);

  // Fused pass, parallel over output channels: reorder grad to GEMM layout
  // G [Cout, N*OHW] and accumulate the per-channel bias gradient while the
  // rows are hot, instead of a serial reorder followed by a serial re-read.
  float* pm = ws.alloc<float>(static_cast<std::size_t>(cout * n * ohw));
  {
    SNNSEC_TRACE_SCOPE("conv.grad_reorder");
    const float* pg = grad_out.data();
    float* pb = has_bias_ ? bias_.grad.data() : nullptr;
    util::parallel_for_chunked(0, cout, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t co = lo; co < hi; ++co) {
        double bias_acc = 0.0;
        float* dst = pm + co * (n * ohw);
        for (std::int64_t i = 0; i < n; ++i) {
          const float* src = pg + (i * cout + co) * ohw;
          float* row = dst + i * ohw;
          for (std::int64_t j = 0; j < ohw; ++j) {
            row[j] = src[j];
            bias_acc += src[j];
          }
        }
        if (pb) pb[co] += static_cast<float>(bias_acc);
      }
    });
  }

  // dW += G x columns^T : [Cout, patch]. op(A) is the upstream gradient —
  // dense by role (surrogate gradients are real-valued, not spikes); the
  // cached spike columns sit in the B operand, out of any A-side skip's
  // reach, so the layer's input hint does not apply here.
  tensor::gemm_raw(Trans::kNo, Trans::kYes, cout, patch, n * ohw, 1.0f, pm,
                   n * ohw, cached_columns_.data(), n * ohw, 1.0f,
                   weight_.grad.data(), patch, tensor::SparsityHint::kDense);

  // dColumns = W^T x G : [patch, N*OHW]; then col2im per sample. op(A) is
  // the weight matrix — dense by role regardless of the input hint.
  float* pdcol = ws.alloc<float>(static_cast<std::size_t>(patch * n * ohw));
  tensor::gemm_raw(Trans::kYes, Trans::kNo, patch, n * ohw, cout, 1.0f,
                   weight_.value.data(), patch, pm, n * ohw, 0.0f, pdcol,
                   n * ohw, tensor::SparsityHint::kDense);
  Tensor dx(Shape{n, g.channels, g.height, g.width});
  {
    SNNSEC_TRACE_SCOPE("conv.col2im");
    float* px = dx.data();
    util::parallel_for(0, n, [&](std::int64_t i) {
      tensor::col2im_ld(g, pdcol, px + i * image_size, n * ohw, i * ohw);
    });
  }
  return dx;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Conv2d::name() const {
  std::ostringstream oss;
  oss << "Conv2d(" << spec_.in_channels << "->" << spec_.out_channels << ", "
      << spec_.kernel << "x" << spec_.kernel << ", stride=" << spec_.stride
      << ", pad=" << spec_.padding << ")";
  return oss.str();
}

void Conv2d::clear_cache() {
  cached_columns_ = Tensor();
  have_cache_ = false;
}

}  // namespace snnsec::nn
