// Inverted dropout: active only in kTrain mode; identity in kEval.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace snnsec::nn {

class Dropout final : public Layer {
 public:
  /// `p` is the drop probability in [0, 1).
  Dropout(double p, util::Rng rng);

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "Dropout"; }
  void clear_cache() override { mask_ = tensor::Tensor(); }

  double p() const { return p_; }

 private:
  double p_;
  util::Rng rng_;
  tensor::Tensor mask_;
  bool have_cache_ = false;
  bool identity_pass_ = false;  // last forward was eval-mode
};

}  // namespace snnsec::nn
