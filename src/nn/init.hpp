// Weight initialization schemes (PyTorch-compatible defaults).
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace snnsec::nn {

/// Kaiming/He uniform with a = sqrt(5), PyTorch's default for Conv2d/Linear
/// weights: U(-b, b) with b = sqrt(6 / ((1 + a^2) * fan_in)) = 1/sqrt(fan_in).
tensor::Tensor kaiming_uniform(tensor::Shape shape, std::int64_t fan_in,
                               util::Rng& rng);

/// Xavier/Glorot uniform: U(-b, b), b = sqrt(6 / (fan_in + fan_out)).
tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in,
                              std::int64_t fan_out, util::Rng& rng);

/// PyTorch default bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
tensor::Tensor bias_uniform(std::int64_t size, std::int64_t fan_in,
                            util::Rng& rng);

}  // namespace snnsec::nn
