// Learning-rate schedules for the Trainer.
#pragma once

#include <cstdint>
#include <string>

namespace snnsec::nn {

enum class ScheduleKind {
  kConstant,
  kStepDecay,  ///< lr *= gamma every `step_epochs`
  kCosine,     ///< cosine anneal from base lr to min_lr over all epochs
  kLinearWarmup,  ///< ramp 0 -> base over `warmup_epochs`, then constant
};

struct LrSchedule {
  ScheduleKind kind = ScheduleKind::kConstant;
  double gamma = 0.5;            ///< step decay factor
  std::int64_t step_epochs = 2;  ///< step decay period
  double min_lr = 1e-5;          ///< cosine floor
  std::int64_t warmup_epochs = 1;

  /// Learning rate for `epoch` (0-based) out of `total_epochs`, given the
  /// configured base rate.
  double lr_at(std::int64_t epoch, std::int64_t total_epochs,
               double base_lr) const;

  std::string to_string() const;
};

}  // namespace snnsec::nn
