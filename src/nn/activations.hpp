// Point-wise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace snnsec::nn {

class ReLU final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }
  std::string_view kind() const override { return "ReLU"; }
  void clear_cache() override { mask_ = tensor::Tensor(); }

 private:
  tensor::Tensor mask_;  // 1 where x > 0
  bool have_cache_ = false;
};

/// Multiply by a fixed scalar (used e.g. as an input-current gain in front
/// of spike encoders; gradient scales by the same factor).
class Scale final : public Layer {
 public:
  explicit Scale(float factor) : factor_(factor) {}

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;
  std::string_view kind() const override { return "Scale"; }

  float factor() const { return factor_; }

 private:
  float factor_;
};

class Sigmoid final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "Sigmoid"; }
  std::string_view kind() const override { return "Sigmoid"; }
  void clear_cache() override { output_ = tensor::Tensor(); }

 private:
  tensor::Tensor output_;
  bool have_cache_ = false;
};

class Tanh final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "Tanh"; }
  std::string_view kind() const override { return "Tanh"; }
  void clear_cache() override { output_ = tensor::Tensor(); }

 private:
  tensor::Tensor output_;
  bool have_cache_ = false;
};

}  // namespace snnsec::nn
