#include "nn/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace snnsec::nn {

double LrSchedule::lr_at(std::int64_t epoch, std::int64_t total_epochs,
                         double base_lr) const {
  SNNSEC_CHECK(epoch >= 0 && total_epochs > 0,
               "LrSchedule: bad epoch " << epoch << "/" << total_epochs);
  SNNSEC_CHECK(base_lr > 0.0, "LrSchedule: base_lr must be positive");
  switch (kind) {
    case ScheduleKind::kConstant:
      return base_lr;
    case ScheduleKind::kStepDecay: {
      SNNSEC_CHECK(step_epochs > 0 && gamma > 0.0,
                   "LrSchedule: bad step decay parameters");
      const std::int64_t drops = epoch / step_epochs;
      return base_lr * std::pow(gamma, static_cast<double>(drops));
    }
    case ScheduleKind::kCosine: {
      const double t =
          total_epochs > 1
              ? static_cast<double>(epoch) / static_cast<double>(total_epochs - 1)
              : 0.0;
      const double floor_lr = std::min(min_lr, base_lr);
      return floor_lr +
             0.5 * (base_lr - floor_lr) * (1.0 + std::cos(3.14159265358979 * t));
    }
    case ScheduleKind::kLinearWarmup: {
      SNNSEC_CHECK(warmup_epochs >= 0, "LrSchedule: negative warmup");
      if (warmup_epochs == 0 || epoch >= warmup_epochs) return base_lr;
      return base_lr * static_cast<double>(epoch + 1) /
             static_cast<double>(warmup_epochs + 1);
    }
  }
  return base_lr;
}

std::string LrSchedule::to_string() const {
  std::ostringstream oss;
  switch (kind) {
    case ScheduleKind::kConstant: oss << "constant"; break;
    case ScheduleKind::kStepDecay:
      oss << "step(gamma=" << gamma << ", every=" << step_epochs << ")";
      break;
    case ScheduleKind::kCosine: oss << "cosine(min=" << min_lr << ")"; break;
    case ScheduleKind::kLinearWarmup:
      oss << "warmup(" << warmup_epochs << ")";
      break;
  }
  return oss.str();
}

}  // namespace snnsec::nn
