#include "nn/flatten.hpp"

namespace snnsec::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Flatten::forward(const Tensor& x, Mode mode) {
  SNNSEC_CHECK(x.ndim() >= 1, "Flatten: rank-0 input");
  if (cache_enabled(mode)) {
    input_shape_ = x.shape();
    have_cache_ = true;
  }
  const std::int64_t n = x.dim(0);
  return x.reshaped(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, "Flatten::backward without forward");
  return grad_out.reshaped(input_shape_);
}

}  // namespace snnsec::nn
