#include "nn/metrics.hpp"

#include <algorithm>
#include <cstring>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace snnsec::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor slice_batch(const Tensor& x, std::int64_t begin, std::int64_t end) {
  SNNSEC_CHECK(x.ndim() >= 1, "slice_batch: rank-0 tensor");
  const std::int64_t n = x.dim(0);
  SNNSEC_CHECK(0 <= begin && begin <= end && end <= n,
               "slice_batch: bad range [" << begin << ", " << end << ") of "
                                          << n);
  std::vector<std::int64_t> dims = x.shape().dims();
  dims[0] = end - begin;
  Tensor out((Shape(dims)));
  const std::int64_t row = x.numel() / std::max<std::int64_t>(n, 1);
  std::memcpy(out.data(), x.data() + begin * row,
              static_cast<std::size_t>((end - begin) * row) * sizeof(float));
  return out;
}

double accuracy(Classifier& model, const Tensor& x,
                const std::vector<std::int64_t>& labels,
                std::int64_t batch_size) {
  const std::int64_t n = x.dim(0);
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "accuracy: label count mismatch");
  SNNSEC_CHECK(batch_size > 0, "accuracy: batch_size must be positive");
  if (n == 0) return 0.0;
  std::int64_t correct = 0;
  for (std::int64_t b = 0; b < n; b += batch_size) {
    const std::int64_t e = std::min(n, b + batch_size);
    const auto pred = model.predict(slice_batch(x, b, e));
    for (std::int64_t i = b; i < e; ++i)
      if (pred[static_cast<std::size_t>(i - b)] ==
          labels[static_cast<std::size_t>(i)])
        ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

std::vector<std::vector<std::int64_t>> confusion_matrix(
    Classifier& model, const Tensor& x,
    const std::vector<std::int64_t>& labels, std::int64_t batch_size) {
  const std::int64_t n = x.dim(0);
  const std::int64_t c = model.num_classes();
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "confusion_matrix: label count mismatch");
  std::vector<std::vector<std::int64_t>> m(
      static_cast<std::size_t>(c),
      std::vector<std::int64_t>(static_cast<std::size_t>(c), 0));
  for (std::int64_t b = 0; b < n; b += batch_size) {
    const std::int64_t e = std::min(n, b + batch_size);
    const auto pred = model.predict(slice_batch(x, b, e));
    for (std::int64_t i = b; i < e; ++i) {
      const std::int64_t t = labels[static_cast<std::size_t>(i)];
      const std::int64_t p = pred[static_cast<std::size_t>(i - b)];
      SNNSEC_CHECK(t >= 0 && t < c && p >= 0 && p < c,
                   "confusion_matrix: class out of range");
      ++m[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
    }
  }
  return m;
}

}  // namespace snnsec::nn
