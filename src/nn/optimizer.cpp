#include "nn/optimizer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace snnsec::nn {

void Optimizer::apply_grad_clip() {
  if (grad_clip_norm_ <= 0.0) return;
  double norm2 = 0.0;
  for (const Parameter* p : params_) {
    const float* g = p->grad.data();
    for (std::int64_t i = 0; i < p->grad.numel(); ++i)
      norm2 += static_cast<double>(g[i]) * g[i];
  }
  const double norm = std::sqrt(norm2);
  // NOLINTNEXTLINE(snnsec-float-eq): norm 0 guards the division below; only an exactly-zero gradient qualifies
  if (norm <= grad_clip_norm_ || norm == 0.0) return;
  const float scale = static_cast<float>(grad_clip_norm_ / norm);
  for (Parameter* p : params_) p->grad.mul_scalar_(scale);
}

Sgd::Sgd(std::vector<Parameter*> params, Config config)
    : Optimizer(std::move(params)), config_(config) {
  SNNSEC_CHECK(config_.lr > 0.0, "Sgd: lr must be positive");
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_)
    velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  apply_grad_clip();
  const float lr = static_cast<float>(config_.lr);
  const float mu = static_cast<float>(config_.momentum);
  const float wd = static_cast<float>(config_.weight_decay);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* vel = velocity_[k].data();
    const std::int64_t n = p.value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + wd * w[i];
      // NOLINTNEXTLINE(snnsec-float-eq): momentum 0 (the exact default) selects plain SGD; no tolerance intended
      if (mu != 0.0f) {
        vel[i] = mu * vel[i] + grad;
        w[i] -= lr * vel[i];
      } else {
        w[i] -= lr * grad;
      }
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, Config config)
    : Optimizer(std::move(params)), config_(config) {
  SNNSEC_CHECK(config_.lr > 0.0, "Adam: lr must be positive");
  SNNSEC_CHECK(config_.beta1 >= 0.0 && config_.beta1 < 1.0 &&
                   config_.beta2 >= 0.0 && config_.beta2 < 1.0,
               "Adam: betas must be in [0, 1)");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  apply_grad_clip();
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const float lr = static_cast<float>(config_.lr);
  const float eps = static_cast<float>(config_.eps);
  const float wd = static_cast<float>(config_.weight_decay);
  const float fb1 = static_cast<float>(b1);
  const float fb2 = static_cast<float>(b2);
  const float inv_bias1 = static_cast<float>(1.0 / bias1);
  const float inv_bias2 = static_cast<float>(1.0 / bias2);

  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    const std::int64_t n = p.value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + wd * w[i];
      m[i] = fb1 * m[i] + (1.0f - fb1) * grad;
      v[i] = fb2 * v[i] + (1.0f - fb2) * grad * grad;
      const float mhat = m[i] * inv_bias1;
      const float vhat = v[i] * inv_bias2;
      w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

}  // namespace snnsec::nn
