// Parameter: a trainable tensor paired with its gradient accumulator.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace snnsec::nn {

struct Parameter {
  Parameter() = default;
  Parameter(std::string param_name, tensor::Tensor initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.shape()) {}

  void zero_grad() { grad.zero_(); }

  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;
};

}  // namespace snnsec::nn
