// First-order optimizers over Parameter lists.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/parameter.hpp"

namespace snnsec::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update from the accumulated gradients.
  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

  /// Change the learning rate (used by LR schedules between epochs).
  virtual void set_lr(double lr) = 0;
  virtual double lr() const = 0;

  /// Enable global-norm gradient clipping before each step (0 disables).
  void set_grad_clip_norm(double max_norm) { grad_clip_norm_ = max_norm; }
  double grad_clip_norm() const { return grad_clip_norm_; }

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  /// Scale all gradients so their global L2 norm is at most the configured
  /// maximum. Call at the top of step().
  void apply_grad_clip();

  std::vector<Parameter*> params_;
  double grad_clip_norm_ = 0.0;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd final : public Optimizer {
 public:
  struct Config {
    double lr = 0.01;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  Sgd(std::vector<Parameter*> params, Config config);
  void step() override;
  void set_lr(double lr) override { config_.lr = lr; }
  double lr() const override { return config_.lr; }

  Config& config() { return config_; }

 private:
  Config config_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba), the optimizer used for both the CNN and SNN here —
/// matching the reference implementation's torch.optim.Adam defaults.
class Adam final : public Optimizer {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Parameter*> params, Config config);
  void step() override;
  void set_lr(double lr) override { config_.lr = lr; }
  double lr() const override { return config_.lr; }

  Config& config() { return config_; }

 private:
  Config config_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace snnsec::nn
