#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>

#include "nn/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace snnsec::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::unique_ptr<Optimizer> make_optimizer(Classifier& model,
                                          const TrainConfig& cfg) {
  switch (cfg.optimizer) {
    case OptimizerKind::kSgd: {
      Sgd::Config sc;
      sc.lr = cfg.lr;
      sc.momentum = cfg.momentum;
      sc.weight_decay = cfg.weight_decay;
      return std::make_unique<Sgd>(model.parameters(), sc);
    }
    case OptimizerKind::kAdam: {
      Adam::Config ac;
      ac.lr = cfg.lr;
      ac.weight_decay = cfg.weight_decay;
      return std::make_unique<Adam>(model.parameters(), ac);
    }
  }
  SNNSEC_FAIL("unknown optimizer kind");
}

/// Gather rows of x (dim 0) by index into a fresh tensor.
Tensor gather_batch(const Tensor& x, const std::vector<std::int64_t>& order,
                    std::int64_t begin, std::int64_t end) {
  std::vector<std::int64_t> dims = x.shape().dims();
  dims[0] = end - begin;
  Tensor out((Shape(dims)));
  const std::int64_t row = x.numel() / x.dim(0);
  for (std::int64_t i = begin; i < end; ++i) {
    std::memcpy(out.data() + (i - begin) * row,
                x.data() + order[static_cast<std::size_t>(i)] * row,
                static_cast<std::size_t>(row) * sizeof(float));
  }
  return out;
}

}  // namespace

TrainHistory Trainer::fit(
    Classifier& model, const Tensor& x,
    const std::vector<std::int64_t>& labels,
    const std::function<bool(const EpochStats&)>& on_epoch) {
  const std::int64_t n = x.dim(0);
  SNNSEC_CHECK(n > 0, "Trainer::fit: empty training set");
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "Trainer::fit: label count mismatch");
  SNNSEC_CHECK(config_.batch_size > 0 && config_.epochs > 0,
               "Trainer::fit: bad config");

  auto optimizer = make_optimizer(model, config_);
  optimizer->set_grad_clip_norm(config_.grad_clip_norm);
  util::Rng shuffle_rng(config_.shuffle_seed);

  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  TrainHistory history;
  util::Stopwatch fit_watch;  // wall-clock budget (max_seconds sentinel)
  double first_epoch_loss = 0.0;
  SNNSEC_TRACE_SCOPE("train.fit");
  for (std::int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    SNNSEC_TRACE_SCOPE("train.epoch");
    util::Stopwatch watch;
    const double epoch_lr =
        config_.schedule.lr_at(epoch, config_.epochs, config_.lr);
    optimizer->set_lr(epoch_lr);
    SNNSEC_GAUGE_SET("train.lr", epoch_lr);
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t b = 0; b < n; b += config_.batch_size) {
      SNNSEC_TRACE_SCOPE("train.batch");
      const std::int64_t e = std::min(n, b + config_.batch_size);
      const Tensor xb = gather_batch(x, order, b, e);
      std::vector<std::int64_t> yb(static_cast<std::size_t>(e - b));
      for (std::int64_t i = b; i < e; ++i)
        yb[static_cast<std::size_t>(i - b)] =
            labels[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
      const double batch_loss = model.train_batch(xb, yb, *optimizer);
      if (config_.check_finite_loss && !std::isfinite(batch_loss)) {
        SNNSEC_COUNTER_ADD("train.divergence", 1);
        std::ostringstream oss;
        oss << "Trainer::fit diverged: non-finite loss " << batch_loss
            << " at epoch " << epoch << ", batch " << batches;
        throw util::DivergenceError(oss.str());
      }
      if (config_.max_seconds > 0.0 &&
          fit_watch.seconds() > config_.max_seconds) {
        SNNSEC_COUNTER_ADD("train.timeout", 1);
        std::ostringstream oss;
        oss << "Trainer::fit exceeded its wall-clock budget of "
            << config_.max_seconds << " s at epoch " << epoch << ", batch "
            << batches;
        throw util::TimeoutError(oss.str());
      }
      loss_sum += batch_loss;
      ++batches;
      SNNSEC_COUNTER_ADD("train.batches", 1);
      SNNSEC_COUNTER_ADD("train.samples", e - b);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / static_cast<double>(std::max<std::int64_t>(batches, 1));
    // Loss-explosion sentinel: compare every later epoch to the first one.
    // A diverging SNN cell typically shoots orders of magnitude past its
    // starting loss long before producing NaN.
    if (epoch == 0) first_epoch_loss = stats.train_loss;
    if (config_.divergence_loss_factor > 0.0 && epoch > 0 &&
        stats.train_loss >
            config_.divergence_loss_factor * std::max(first_epoch_loss, 1e-3)) {
      SNNSEC_COUNTER_ADD("train.divergence", 1);
      std::ostringstream oss;
      oss << "Trainer::fit diverged: epoch " << epoch << " loss "
          << stats.train_loss << " exceeds " << config_.divergence_loss_factor
          << "x the first-epoch loss " << first_epoch_loss;
      throw util::DivergenceError(oss.str());
    }
    // Evaluate on a capped subset to keep epochs cheap for SNNs.
    const std::int64_t eval_n = std::min<std::int64_t>(n, 512);
    {
      SNNSEC_TRACE_SCOPE("train.eval");
      stats.train_accuracy =
          accuracy(model, slice_batch(x, 0, eval_n),
                   {labels.begin(), labels.begin() + eval_n},
                   config_.batch_size);
    }
    stats.learning_rate = epoch_lr;
    stats.seconds = watch.seconds();
    if (obs::Registry::enabled()) {
      const obs::Labels epoch_label{{"epoch", std::to_string(epoch)}};
      obs::Registry& reg = obs::Registry::instance();
      reg.record("train.epoch.loss", stats.train_loss, epoch_label);
      reg.record("train.epoch.accuracy", stats.train_accuracy, epoch_label);
      reg.record("train.epoch.seconds", stats.seconds, epoch_label);
      SNNSEC_HISTOGRAM_OBSERVE("train.epoch_seconds", stats.seconds, 0.1, 1.0,
                               10.0, 60.0, 600.0);
    }
    if (config_.verbose) {
      SNNSEC_LOG_INFO("epoch " << epoch << ": loss=" << stats.train_loss
                               << " acc=" << stats.train_accuracy << " ("
                               << watch.pretty() << ")");
    }
    history.epochs.push_back(stats);
    if (on_epoch && !on_epoch(stats)) break;
  }
  return history;
}

}  // namespace snnsec::nn
