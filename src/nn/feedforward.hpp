// FeedforwardClassifier: a Sequential network + softmax-cross-entropy loss
// packaged behind the Classifier interface. This is the (non-spiking) CNN
// baseline of the paper.
#pragma once

#include <memory>

#include "nn/classifier.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace snnsec::nn {

class FeedforwardClassifier final : public Classifier {
 public:
  FeedforwardClassifier(std::unique_ptr<Sequential> net,
                        std::int64_t num_classes, std::string description);

  tensor::Tensor logits(const tensor::Tensor& x) override;
  tensor::Tensor input_gradient(const tensor::Tensor& x,
                                const std::vector<std::int64_t>& labels,
                                double* loss_out) override;
  tensor::Tensor output_gradient(const tensor::Tensor& x,
                                 const tensor::Tensor& cotangent) override;
  double train_batch(const tensor::Tensor& x,
                     const std::vector<std::int64_t>& labels,
                     Optimizer& optimizer) override;
  std::vector<Parameter*> parameters() override;
  std::int64_t num_classes() const override { return num_classes_; }
  std::string describe() const override;

  Sequential& net() { return *net_; }

 private:
  std::unique_ptr<Sequential> net_;
  SoftmaxCrossEntropy loss_;
  std::int64_t num_classes_;
  std::string description_;
};

}  // namespace snnsec::nn
