// LeNet builders.
//
// The paper's motivational CNN is "5-layer: 3 convolutional + 2 fully
// connected" trained on MNIST; its security study compares SNNs against a
// "Lenet-5 CNN". Both variants are provided. LenetSpec is shared with the
// spiking builder (snn/spiking_lenet.hpp) so the CNN and SNN have the same
// number of layers and neurons per layer, as in the paper's setup.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/feedforward.hpp"
#include "util/rng.hpp"

namespace snnsec::nn {

struct LenetSpec {
  std::int64_t in_channels = 1;
  std::int64_t image_size = 28;  ///< square input, must be divisible by 4
  std::int64_t num_classes = 10;
  std::int64_t conv1_channels = 6;
  std::int64_t conv2_channels = 16;
  std::int64_t conv3_channels = 32;  ///< only the paper (3-conv) variant
  std::int64_t fc_hidden = 120;
  std::int64_t fc_hidden2 = 84;  ///< only the classic variant
  double dropout = 0.0;
  bool use_batchnorm = false;  ///< BatchNorm2d after each conv (paper CNN)

  /// Return a copy with channel/hidden counts scaled by `factor`
  /// (rounded up, min 2) — used by the quick experiment profiles.
  LenetSpec scaled(double factor) const;

  /// Spatial size after the two stride-2 poolings.
  std::int64_t pooled_size() const { return image_size / 4; }

  void validate() const;
};

/// Paper variant: conv-relu-pool, conv-relu-pool, conv-relu, fc-relu, fc.
/// (3 conv + 2 fc = the paper's "5-layer CNN".)
std::unique_ptr<FeedforwardClassifier> build_paper_cnn(const LenetSpec& spec,
                                                       util::Rng& rng);

/// Classic LeNet-5: conv-pool, conv-pool, fc(120), fc(84), fc(classes),
/// ReLU activations, max pooling.
std::unique_ptr<FeedforwardClassifier> build_classic_lenet5(
    const LenetSpec& spec, util::Rng& rng);

}  // namespace snnsec::nn
