#include "nn/activations.hpp"

#include <cmath>
#include <sstream>

namespace snnsec::nn {

using tensor::Tensor;

Tensor ReLU::forward(const Tensor& x, Mode mode) {
  Tensor y(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  if (cache_enabled(mode)) {
    mask_ = Tensor(x.shape());
    float* pm = mask_.data();
    for (std::int64_t i = 0; i < n; ++i) {
      const bool pos = px[i] > 0.0f;
      py[i] = pos ? px[i] : 0.0f;
      pm[i] = pos ? 1.0f : 0.0f;
    }
    have_cache_ = true;
  } else {
    for (std::int64_t i = 0; i < n; ++i) py[i] = px[i] > 0.0f ? px[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_ && grad_out.shape() == mask_.shape(),
               "ReLU::backward cache/shape mismatch");
  Tensor dx = grad_out;
  dx.mul_(mask_);
  return dx;
}

Tensor Scale::forward(const Tensor& x, Mode /*mode*/) {
  Tensor y = x;
  y.mul_scalar_(factor_);
  return y;
}

Tensor Scale::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  dx.mul_scalar_(factor_);
  return dx;
}

std::string Scale::name() const {
  std::ostringstream oss;
  oss << "Scale(" << factor_ << ")";
  return oss.str();
}

Tensor Sigmoid::forward(const Tensor& x, Mode mode) {
  Tensor y(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i)
    py[i] = 1.0f / (1.0f + std::exp(-px[i]));
  if (cache_enabled(mode)) {
    output_ = y;
    have_cache_ = true;
  }
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_ && grad_out.shape() == output_.shape(),
               "Sigmoid::backward cache/shape mismatch");
  Tensor dx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* po = output_.data();
  float* pd = dx.data();
  const std::int64_t n = dx.numel();
  for (std::int64_t i = 0; i < n; ++i) pd[i] = pg[i] * po[i] * (1.0f - po[i]);
  return dx;
}

Tensor Tanh::forward(const Tensor& x, Mode mode) {
  Tensor y(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) py[i] = std::tanh(px[i]);
  if (cache_enabled(mode)) {
    output_ = y;
    have_cache_ = true;
  }
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_ && grad_out.shape() == output_.shape(),
               "Tanh::backward cache/shape mismatch");
  Tensor dx(grad_out.shape());
  const float* pg = grad_out.data();
  const float* po = output_.data();
  float* pd = dx.data();
  const std::int64_t n = dx.numel();
  for (std::int64_t i = 0; i < n; ++i) pd[i] = pg[i] * (1.0f - po[i] * po[i]);
  return dx;
}

}  // namespace snnsec::nn
