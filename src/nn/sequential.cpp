#include "nn/sequential.hpp"

#include <sstream>

namespace snnsec::nn {

using tensor::Tensor;

Sequential& Sequential::add(LayerPtr layer) {
  SNNSEC_CHECK(layer != nullptr, "Sequential::add(nullptr)");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, Mode mode) {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer->forward(h, mode);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (const auto& layer : layers_)
    for (Parameter* p : layer->parameters()) out.push_back(p);
  return out;
}

std::string Sequential::name() const {
  std::ostringstream oss;
  oss << "Sequential(" << layers_.size() << " layers)";
  return oss.str();
}

void Sequential::clear_cache() {
  for (const auto& layer : layers_) layer->clear_cache();
}

std::string Sequential::summary() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < layers_.size(); ++i)
    oss << "  (" << i << ") " << layers_[i]->name() << '\n';
  return oss.str();
}

}  // namespace snnsec::nn
