#include "nn/batchnorm.hpp"

#include <cmath>
#include <sstream>

namespace snnsec::nn {
namespace detail {

using tensor::Shape;
using tensor::Tensor;

BatchNormBase::BatchNormBase(std::int64_t num_features, double momentum,
                             double eps)
    : num_features_(num_features),
      momentum_(momentum),
      eps_(eps),
      gamma_("gamma", Tensor::ones(Shape{num_features})),
      beta_("beta", Tensor::zeros(Shape{num_features})),
      running_mean_(Shape{num_features}),
      running_var_(Shape{num_features}, 1.0f) {
  SNNSEC_CHECK(num_features > 0, "BatchNorm: num_features must be positive");
  SNNSEC_CHECK(momentum > 0.0 && momentum <= 1.0,
               "BatchNorm: momentum outside (0, 1]");
  SNNSEC_CHECK(eps > 0.0, "BatchNorm: eps must be positive");
}

std::vector<Parameter*> BatchNormBase::parameters() {
  return {&gamma_, &beta_};
}

void BatchNormBase::clear_cache() {
  x_hat_ = Tensor();
  inv_std_.clear();
  have_cache_ = false;
}

Tensor BatchNormBase::forward_impl(const Tensor& x, Mode mode,
                                   std::int64_t channels, std::int64_t inner) {
  SNNSEC_CHECK(channels == num_features_,
               "BatchNorm: expected " << num_features_ << " channels, got "
                                      << channels);
  const std::int64_t n = x.dim(0);
  const std::int64_t m = n * inner;  // elements per channel
  SNNSEC_CHECK(m > 0, "BatchNorm: empty batch");

  // In train mode use batch statistics (and update running estimates);
  // otherwise (eval and attack) use the frozen running estimates — the
  // adversary sees the deployed network.
  const bool batch_stats = stochastic_enabled(mode);

  std::vector<float> mean(static_cast<std::size_t>(channels));
  std::vector<float> inv_std(static_cast<std::size_t>(channels));
  const float* px = x.data();
  if (batch_stats) {
    for (std::int64_t c = 0; c < channels; ++c) {
      double sum = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* row = px + (i * channels + c) * inner;
        for (std::int64_t j = 0; j < inner; ++j) sum += row[j];
      }
      const double mu = sum / static_cast<double>(m);
      double var = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* row = px + (i * channels + c) * inner;
        for (std::int64_t j = 0; j < inner; ++j) {
          const double d = row[j] - mu;
          var += d * d;
        }
      }
      var /= static_cast<double>(m);  // biased, as in inference-consistent BN
      mean[static_cast<std::size_t>(c)] = static_cast<float>(mu);
      inv_std[static_cast<std::size_t>(c)] =
          static_cast<float>(1.0 / std::sqrt(var + eps_));
      // Running estimates use the unbiased variance (PyTorch convention).
      const double unbiased =
          m > 1 ? var * static_cast<double>(m) / static_cast<double>(m - 1)
                : var;
      running_mean_[c] = static_cast<float>(
          (1.0 - momentum_) * running_mean_[c] + momentum_ * mu);
      running_var_[c] = static_cast<float>(
          (1.0 - momentum_) * running_var_[c] + momentum_ * unbiased);
    }
  } else {
    for (std::int64_t c = 0; c < channels; ++c) {
      mean[static_cast<std::size_t>(c)] = running_mean_[c];
      inv_std[static_cast<std::size_t>(c)] = static_cast<float>(
          1.0 / std::sqrt(static_cast<double>(running_var_[c]) + eps_));
    }
  }

  Tensor y(x.shape());
  Tensor x_hat(x.shape());
  float* py = y.data();
  float* ph = x_hat.data();
  const float* pg = gamma_.value.data();
  const float* pb = beta_.value.data();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t c = 0; c < channels; ++c) {
      const float mu = mean[static_cast<std::size_t>(c)];
      const float is = inv_std[static_cast<std::size_t>(c)];
      const std::int64_t base = (i * channels + c) * inner;
      for (std::int64_t j = 0; j < inner; ++j) {
        const float h = (px[base + j] - mu) * is;
        ph[base + j] = h;
        py[base + j] = pg[c] * h + pb[c];
      }
    }

  if (cache_enabled(mode)) {
    x_hat_ = std::move(x_hat);
    inv_std_ = std::move(inv_std);
    cached_inner_ = inner;
    cached_batch_ = n;
    used_batch_stats_ = batch_stats;
    have_cache_ = true;
  }
  return y;
}

Tensor BatchNormBase::backward_impl(const Tensor& grad_out) {
  SNNSEC_CHECK(have_cache_, "BatchNorm::backward without cached forward");
  SNNSEC_CHECK(grad_out.shape() == x_hat_.shape(),
               "BatchNorm::backward: grad shape mismatch");
  const std::int64_t channels = num_features_;
  const std::int64_t n = cached_batch_;
  const std::int64_t inner = cached_inner_;
  const std::int64_t m = n * inner;

  const float* pdy = grad_out.data();
  const float* ph = x_hat_.data();
  const float* pg = gamma_.value.data();
  float* pdg = gamma_.grad.data();
  float* pdb = beta_.grad.data();

  // Per-channel reductions.
  std::vector<double> sum_dy(static_cast<std::size_t>(channels), 0.0);
  std::vector<double> sum_dy_h(static_cast<std::size_t>(channels), 0.0);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t c = 0; c < channels; ++c) {
      const std::int64_t base = (i * channels + c) * inner;
      for (std::int64_t j = 0; j < inner; ++j) {
        sum_dy[static_cast<std::size_t>(c)] += pdy[base + j];
        sum_dy_h[static_cast<std::size_t>(c)] +=
            static_cast<double>(pdy[base + j]) * ph[base + j];
      }
    }
  for (std::int64_t c = 0; c < channels; ++c) {
    pdg[c] += static_cast<float>(sum_dy_h[static_cast<std::size_t>(c)]);
    pdb[c] += static_cast<float>(sum_dy[static_cast<std::size_t>(c)]);
  }

  Tensor dx(grad_out.shape());
  float* pdx = dx.data();
  if (used_batch_stats_) {
    // Full coupled gradient through the batch statistics.
    const float inv_m = 1.0f / static_cast<float>(m);
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t c = 0; c < channels; ++c) {
        const float gis = pg[c] * inv_std_[static_cast<std::size_t>(c)];
        const float s_dy =
            static_cast<float>(sum_dy[static_cast<std::size_t>(c)]);
        const float s_dyh =
            static_cast<float>(sum_dy_h[static_cast<std::size_t>(c)]);
        const std::int64_t base = (i * channels + c) * inner;
        for (std::int64_t j = 0; j < inner; ++j) {
          pdx[base + j] = gis * inv_m *
                          (static_cast<float>(m) * pdy[base + j] - s_dy -
                           ph[base + j] * s_dyh);
        }
      }
  } else {
    // Frozen statistics: the map is affine per element.
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t c = 0; c < channels; ++c) {
        const float gis = pg[c] * inv_std_[static_cast<std::size_t>(c)];
        const std::int64_t base = (i * channels + c) * inner;
        for (std::int64_t j = 0; j < inner; ++j)
          pdx[base + j] = pdy[base + j] * gis;
      }
  }
  return dx;
}

}  // namespace detail

using tensor::Tensor;

Tensor BatchNorm2d::forward(const Tensor& x, Mode mode) {
  SNNSEC_CHECK(x.ndim() == 4, name() << ": expects [N,C,H,W], got "
                                     << x.shape().to_string());
  return forward_impl(x, mode, x.dim(1), x.dim(2) * x.dim(3));
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  return backward_impl(grad_out);
}

std::string BatchNorm2d::name() const {
  std::ostringstream oss;
  oss << "BatchNorm2d(" << num_features_ << ")";
  return oss.str();
}

Tensor BatchNorm1d::forward(const Tensor& x, Mode mode) {
  SNNSEC_CHECK(x.ndim() == 2, name() << ": expects [N,F], got "
                                     << x.shape().to_string());
  return forward_impl(x, mode, x.dim(1), 1);
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  return backward_impl(grad_out);
}

std::string BatchNorm1d::name() const {
  std::ostringstream oss;
  oss << "BatchNorm1d(" << num_features_ << ")";
  return oss.str();
}

}  // namespace snnsec::nn
