// Flatten [N, ...] -> [N, prod(...)] (and un-flatten on backward).
#pragma once

#include "nn/layer.hpp"

namespace snnsec::nn {

class Flatten final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }
  std::string_view kind() const override { return "Flatten"; }

 private:
  tensor::Shape input_shape_;
  bool have_cache_ = false;
};

}  // namespace snnsec::nn
