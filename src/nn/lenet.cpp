#include "nn/lenet.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace snnsec::nn {

namespace {
std::int64_t scale_count(std::int64_t n, double factor) {
  return std::max<std::int64_t>(
      2, static_cast<std::int64_t>(
             std::ceil(static_cast<double>(n) * factor)));
}
}  // namespace

LenetSpec LenetSpec::scaled(double factor) const {
  LenetSpec s = *this;
  s.conv1_channels = scale_count(conv1_channels, factor);
  s.conv2_channels = scale_count(conv2_channels, factor);
  s.conv3_channels = scale_count(conv3_channels, factor);
  s.fc_hidden = scale_count(fc_hidden, factor);
  s.fc_hidden2 = scale_count(fc_hidden2, factor);
  return s;
}

void LenetSpec::validate() const {
  SNNSEC_CHECK(in_channels > 0, "LenetSpec: in_channels must be positive");
  SNNSEC_CHECK(image_size >= 8 && image_size % 4 == 0,
               "LenetSpec: image_size must be >= 8 and divisible by 4, got "
                   << image_size);
  SNNSEC_CHECK(num_classes > 1, "LenetSpec: need >= 2 classes");
  SNNSEC_CHECK(conv1_channels > 0 && conv2_channels > 0 && conv3_channels > 0,
               "LenetSpec: conv channels must be positive");
  SNNSEC_CHECK(fc_hidden > 0 && fc_hidden2 > 0,
               "LenetSpec: fc sizes must be positive");
  SNNSEC_CHECK(dropout >= 0.0 && dropout < 1.0, "LenetSpec: bad dropout");
}

std::unique_ptr<FeedforwardClassifier> build_paper_cnn(const LenetSpec& spec,
                                                       util::Rng& rng) {
  spec.validate();
  auto net = std::make_unique<Sequential>();
  // conv1: 5x5, pad 2 keeps spatial size; pool halves it.
  net->emplace<Conv2d>(
      Conv2dSpec{spec.in_channels, spec.conv1_channels, 5, 1, 2}, rng);
  if (spec.use_batchnorm) net->emplace<BatchNorm2d>(spec.conv1_channels);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  // conv2
  net->emplace<Conv2d>(
      Conv2dSpec{spec.conv1_channels, spec.conv2_channels, 5, 1, 2}, rng);
  if (spec.use_batchnorm) net->emplace<BatchNorm2d>(spec.conv2_channels);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  // conv3: 3x3, pad 1, no pooling.
  net->emplace<Conv2d>(
      Conv2dSpec{spec.conv2_channels, spec.conv3_channels, 3, 1, 1}, rng);
  if (spec.use_batchnorm) net->emplace<BatchNorm2d>(spec.conv3_channels);
  net->emplace<ReLU>();
  net->emplace<Flatten>();
  const std::int64_t flat =
      spec.conv3_channels * spec.pooled_size() * spec.pooled_size();
  if (spec.dropout > 0.0)
    net->emplace<Dropout>(spec.dropout, rng.fork("dropout1"));
  net->emplace<Linear>(flat, spec.fc_hidden, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(spec.fc_hidden, spec.num_classes, rng);

  std::ostringstream desc;
  desc << "paper 5-layer CNN (3 conv + 2 fc), " << spec.image_size << "x"
       << spec.image_size << " input";
  return std::make_unique<FeedforwardClassifier>(std::move(net),
                                                 spec.num_classes, desc.str());
}

std::unique_ptr<FeedforwardClassifier> build_classic_lenet5(
    const LenetSpec& spec, util::Rng& rng) {
  spec.validate();
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(
      Conv2dSpec{spec.in_channels, spec.conv1_channels, 5, 1, 2}, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Conv2d>(
      Conv2dSpec{spec.conv1_channels, spec.conv2_channels, 5, 1, 2}, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Flatten>();
  const std::int64_t flat =
      spec.conv2_channels * spec.pooled_size() * spec.pooled_size();
  net->emplace<Linear>(flat, spec.fc_hidden, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(spec.fc_hidden, spec.fc_hidden2, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(spec.fc_hidden2, spec.num_classes, rng);

  std::ostringstream desc;
  desc << "classic LeNet-5 (2 conv + 3 fc), " << spec.image_size << "x"
       << spec.image_size << " input";
  return std::make_unique<FeedforwardClassifier>(std::move(net),
                                                 spec.num_classes, desc.str());
}

}  // namespace snnsec::nn
