// Sequential: ordered composition of layers with chained forward/backward.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace snnsec::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for fluent building.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;
  std::string_view kind() const override { return "Sequential"; }
  void clear_cache() override;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Multi-line human-readable structure dump.
  std::string summary() const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace snnsec::nn
