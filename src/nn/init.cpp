#include "nn/init.hpp"

#include <cmath>

#include "util/error.hpp"

namespace snnsec::nn {

tensor::Tensor kaiming_uniform(tensor::Shape shape, std::int64_t fan_in,
                               util::Rng& rng) {
  SNNSEC_CHECK(fan_in > 0, "kaiming_uniform: fan_in must be positive");
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return tensor::Tensor::rand_uniform(std::move(shape), rng, -bound, bound);
}

tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in,
                              std::int64_t fan_out, util::Rng& rng) {
  SNNSEC_CHECK(fan_in > 0 && fan_out > 0,
               "xavier_uniform: fans must be positive");
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::rand_uniform(std::move(shape), rng, -bound, bound);
}

tensor::Tensor bias_uniform(std::int64_t size, std::int64_t fan_in,
                            util::Rng& rng) {
  SNNSEC_CHECK(fan_in > 0, "bias_uniform: fan_in must be positive");
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return tensor::Tensor::rand_uniform(tensor::Shape{size}, rng, -bound, bound);
}

}  // namespace snnsec::nn
