// Loss functions with exact analytic gradients.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace snnsec::nn {

/// Mean softmax-cross-entropy over a batch.
///
/// forward(logits [N, C], labels) returns the scalar loss; backward()
/// returns dL/dlogits = (softmax(logits) - onehot) / N for the most recent
/// forward. This is the training loss for both the CNN and the SNN, and the
/// objective PGD ascends.
class SoftmaxCrossEntropy {
 public:
  double forward(const tensor::Tensor& logits,
                 const std::vector<std::int64_t>& labels);
  tensor::Tensor backward() const;

 private:
  tensor::Tensor probs_;  // softmax(logits)
  std::vector<std::int64_t> labels_;
  bool have_cache_ = false;
};

/// Mean squared error against one-hot targets (ablation alternative).
class MseLoss {
 public:
  double forward(const tensor::Tensor& output,
                 const std::vector<std::int64_t>& labels);
  tensor::Tensor backward() const;

 private:
  tensor::Tensor diff_;  // output - onehot
  bool have_cache_ = false;
};

}  // namespace snnsec::nn
