// 2-D convolution (cross-correlation, PyTorch convention) via batched
// im2col + one large GEMM.
//
// Input  : [N, Cin, H, W]
// Weight : stored as a [Cout, Cin*KH*KW] GEMM-ready matrix
// Output : [N, Cout, OH, OW]
//
// Forward builds a single [Cin*KH*KW, N*OH*OW] column matrix for the whole
// batch (cached for backward), multiplies once, and scatters rows back into
// batch order. Backward reuses the cached columns for the weight gradient
// and runs the transposed GEMM + col2im for the input gradient — the input
// gradient is what white-box attacks differentiate through.
#pragma once

#include "nn/layer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace snnsec::nn {

struct Conv2dSpec {
  std::int64_t in_channels = 1;
  std::int64_t out_channels = 1;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
};

class Conv2d final : public Layer {
 public:
  Conv2d(Conv2dSpec spec, util::Rng& rng, bool bias = true);

  tensor::Tensor forward(const tensor::Tensor& x, Mode mode) override;

  /// Allocation-free forward: writes into `y`, reshaping it only when the
  /// output geometry changes. In eval mode every scratch buffer (im2col
  /// columns, GEMM output) comes from the per-thread util::Workspace, so the
  /// steady state performs zero heap allocations; in train mode the column
  /// matrix lives in a member buffer (backward needs it after this call
  /// returns) that is likewise reused across calls of the same shape.
  void forward_into(const tensor::Tensor& x, tensor::Tensor& y, Mode mode);

  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override;
  std::string_view kind() const override { return "Conv2d"; }
  void clear_cache() override;

  const Conv2dSpec& spec() const { return spec_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  /// Declare how this layer's input operand is populated. Conv resolves to
  /// kDense (im2col + blocked GEMM, the default) or kEvents (receptive
  /// fields compressed to event lists, spike inputs); kSparse is rejected —
  /// in the im2col lowering the spike sparsity sits in the B operand where
  /// the zero-skip row kernel cannot reach it. Resolution is STICKY (must
  /// precede the first forward, never flips afterwards; throws util::Error
  /// otherwise). The event path runs in eval mode; training/attack forwards
  /// keep the dense lowering because backward consumes the cached dense
  /// columns — still one fixed kernel per (layer, mode), never data-probed.
  void set_input_hint(tensor::SparsityHint hint);
  tensor::SparsityHint input_hint() const { return input_hint_; }

  /// Output spatial size for a given input size.
  std::int64_t out_size(std::int64_t in_size) const {
    return (in_size + 2 * spec_.padding - spec_.kernel) / spec_.stride + 1;
  }

 private:
  tensor::ConvGeometry geometry(std::int64_t h, std::int64_t w) const;
  void resolve_kernel();  ///< first-forward latch + tensor.gemm.kernel metric
  void forward_events(const tensor::Tensor& x, tensor::Tensor& y,
                      const tensor::ConvGeometry& g);

  Conv2dSpec spec_;
  bool has_bias_;
  tensor::SparsityHint input_hint_ = tensor::SparsityHint::kDense;
  bool kernel_resolved_ = false;  ///< set at first forward; hint frozen after
  Parameter weight_;  // [Cout, Cin*K*K]
  Parameter bias_;    // [Cout]

  // forward cache
  tensor::Tensor cached_columns_;  // [patch, N*OH*OW]
  tensor::ConvGeometry cached_geom_{};
  std::int64_t cached_batch_ = 0;
  bool have_cache_ = false;
};

}  // namespace snnsec::nn
