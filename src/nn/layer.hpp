// Layer: the unit of composition for feed-forward networks.
//
// snnsec uses layer-local manual backprop instead of a global autograd tape:
// each layer caches during forward() exactly what its backward() needs, and
// backward() both accumulates parameter gradients and returns the gradient
// w.r.t. its input. The chain rule across a network is then a simple
// reverse iteration (see Sequential). Correctness is enforced by
// finite-difference gradient-check tests, including the input gradient that
// white-box attacks consume.
//
// Contract:
//  * backward() must be called at most once per forward(), with a gradient
//    shaped like that forward()'s output.
//  * Layers own their Parameters; parameters() exposes stable pointers.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::nn {

/// Forward-pass mode:
///  kTrain  — cache for backward, stochastic layers (dropout) active.
///  kEval   — no caching, deterministic inference.
///  kAttack — cache for backward (white-box input gradients) but with
///            inference semantics: stochastic layers are identity.
enum class Mode { kTrain, kEval, kAttack };

constexpr bool cache_enabled(Mode m) { return m != Mode::kEval; }
constexpr bool stochastic_enabled(Mode m) { return m == Mode::kTrain; }

class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Compute the layer output; in kTrain mode, cache what backward() needs.
  virtual tensor::Tensor forward(const tensor::Tensor& x, Mode mode) = 0;

  /// Given dL/d(output), accumulate dL/d(params) into Parameter::grad and
  /// return dL/d(input). Valid only after a kTrain forward().
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Human-readable layer description, e.g. "Conv2d(1->6, 5x5)".
  virtual std::string name() const = 0;

  /// Stable serialization identity, e.g. "Conv2d" — no instance parameters.
  /// Every kind must appear in the serialization registry
  /// (src/nn/layer_registry.cpp); checkpoints fingerprint the kind sequence
  /// so a file can never be deserialized into a different architecture.
  /// Enforced statically by snnsec_lint rule snnsec-layer-contract.
  virtual std::string_view kind() const = 0;

  /// Drop forward caches (frees memory between experiments).
  virtual void clear_cache() {}
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace snnsec::nn
