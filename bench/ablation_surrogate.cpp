// Ablation A1 (design-choice study, not a paper figure): how the surrogate
// slope α affects both learnability and white-box robustness. The surrogate
// is the lens through which the attacker sees the SNN — a narrower
// surrogate (large α) degrades the attack gradient as much as the training
// gradient, which is one mechanism behind the parameter-dependent
// "inherent robustness" of Figs. 7-9.
#include <cstdio>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  // One mid-grid structural point; ablate alpha around the default (10).
  cfg.v_th_grid = {1.0};
  cfg.t_grid = {util::full_profile_enabled() ? 64 : 24};
  bench::print_banner("Ablation A1", "surrogate slope alpha vs robustness",
                      cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  const std::vector<double> alphas{2.0, 10.0, 50.0};
  const std::vector<double> epsilons =
      util::full_profile_enabled() ? std::vector<double>{0.5, 1.0}
                                   : std::vector<double>{0.1, 0.2};

  data::Dataset attack_set = data.test;
  if (cfg.attack_test_cap > 0 && attack_set.size() > cfg.attack_test_cap)
    attack_set = attack_set.take(cfg.attack_test_cap);
  attack::EvalConfig eval_cfg;
  eval_cfg.batch_size = cfg.eval_batch;

  util::CsvWriter csv(bench::out_dir() + "/ablation_surrogate.csv");
  {
    std::vector<std::string> header{"alpha", "clean_accuracy"};
    for (const double eps : epsilons)
      header.push_back("robustness_eps_" + util::format_float(eps, 2));
    csv.write_header(header);
  }

  std::printf("\n%-8s %-10s", "alpha", "clean");
  for (const double eps : epsilons) std::printf(" rob@%.2f", eps);
  std::printf("\n");

  for (const double alpha : alphas) {
    core::ExplorationConfig acfg = cfg;
    acfg.snn_template.surrogate.alpha = static_cast<float>(alpha);
    core::RobustnessExplorer explorer(acfg, bench::cache_dir());
    auto cell = explorer.train_cell(acfg.v_th_grid[0], acfg.t_grid[0], data);
    std::printf("%-8.1f %-10.3f", alpha, cell.clean_accuracy);
    util::CsvWriter::Row row;
    row << alpha << cell.clean_accuracy;
    for (const double eps : epsilons) {
      attack::Pgd pgd(acfg.pgd);
      const auto pt = attack::evaluate_attack(*cell.model, pgd,
                                              attack_set.images,
                                              attack_set.labels, eps,
                                              eval_cfg);
      std::printf(" %-8.3f", pt.robustness);
      row << pt.robustness;
    }
    std::printf("\n");
    csv.write(row);
  }

  std::printf("\ncsv: %s/ablation_surrogate.csv | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
