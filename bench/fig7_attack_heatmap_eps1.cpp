// Figure 7: robustness heat map over (V_th, T) under PGD with the paper's
// ε = 1 (quick-profile calibrated ε = 0.1). Claims to reproduce:
//   (1) high clean accuracy does not guarantee robustness — some
//       high-accuracy cells collapse while others barely move,
//   (2) robustness varies strongly across the structural-parameter grid.
#include "attack_heatmap.hpp"

int main() {
  return snnsec::bench::run_attack_heatmap("Fig. 7", /*paper_eps=*/1.0,
                                           /*quick_eps=*/0.1,
                                           "fig7_attack_heatmap_eps1.csv");
}
