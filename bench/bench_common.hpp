// Shared plumbing for the figure-reproduction harnesses.
//
// Every fig*_ binary:
//   * runs the quick profile by default, the paper-scale profile with
//     SNNSEC_FULL=1 (see core::default_profile and EXPERIMENTS.md for the
//     quick-axis calibration quick-ε ≈ paper-ε / 10);
//   * shares one model-checkpoint cache so Figures 6/7/8/9 train each
//     (V_th, T) cell exactly once across the whole bench suite;
//   * prints the figure's series to stdout and writes CSV to bench/out/.
#pragma once

#include <cstdio>
#include <string>

#include "core/experiment_config.hpp"
#include "data/provider.hpp"
#include "util/env.hpp"

namespace snnsec::bench {

inline std::string out_dir() {
  return util::env_or("SNNSEC_OUT_DIR", "bench/out");
}

inline std::string cache_dir() {
  return util::env_or("SNNSEC_CACHE_DIR", ".snnsec_cache");
}

inline void print_banner(const char* figure, const char* description,
                         const core::ExplorationConfig& cfg) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("profile: %s | %s\n",
              util::full_profile_enabled() ? "FULL (paper-scale)"
                                           : "quick (SNNSEC_FULL=1 for paper scale)",
              cfg.summary().c_str());
  std::printf("==============================================================\n");
}

inline data::DataBundle load_data(const core::ExplorationConfig& cfg) {
  const data::DataBundle bundle = data::load_digits(cfg.data);
  std::printf("data: %s | train %s | test %s\n", bundle.source(),
              bundle.train.summary().c_str(), bundle.test.summary().c_str());
  return bundle;
}

/// ε axis for the CNN-vs-SNN curve figures (1 and 9). The paper sweeps
/// 0..1.5 on MNIST; the quick profile sweeps the calibrated 0..0.2 range
/// (quick ε ≈ paper ε / 10 — see EXPERIMENTS.md).
inline std::vector<double> curve_epsilons() {
  if (util::full_profile_enabled())
    return {0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5};
  return {0.0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2};
}

}  // namespace snnsec::bench
