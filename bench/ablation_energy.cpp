// Ablation A3 (extension): the efficiency side of the paper's conclusion —
// "SNNs' high power efficiency makes them even more interesting". For each
// learnable (V_th, T) cell we report the spike/synop cost per inference
// next to its robustness, exposing the security-vs-energy trade-off the
// structural parameters control: higher thresholds fire less AND often
// resist attacks better, while longer windows buy accuracy with energy.
#include <cstdio>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "core/explorer.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  bench::print_banner("Ablation A3",
                      "energy (spikes/synops) vs robustness across the grid",
                      cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  const double eps = util::full_profile_enabled() ? 1.0 : 0.1;
  data::Dataset attack_set = data.test;
  if (cfg.attack_test_cap > 0 && attack_set.size() > cfg.attack_test_cap)
    attack_set = attack_set.take(cfg.attack_test_cap);
  attack::EvalConfig eval_cfg;
  eval_cfg.batch_size = cfg.eval_batch;

  util::CsvWriter csv(bench::out_dir() + "/ablation_energy.csv");
  csv.write_header({"v_th", "T", "clean_accuracy", "robustness",
                    "spikes_per_inference", "synops_per_inference",
                    "energy_nj"});

  std::printf("\n%-7s %-5s %-8s %-8s %-12s %-12s %s\n", "V_th", "T", "clean",
              "rob", "spikes/inf", "synops/inf", "energy[nJ]");

  core::RobustnessExplorer explorer(cfg, bench::cache_dir());
  const tensor::Tensor probe = attack_set.take(32).images;
  for (const double v_th : cfg.v_th_grid) {
    for (const std::int64_t t : cfg.t_grid) {
      auto cell = explorer.train_cell(v_th, t, data);
      if (cell.clean_accuracy < cfg.accuracy_threshold) continue;

      const core::ActivityReport activity =
          core::measure_activity(*cell.model, probe);
      attack::Pgd pgd(cfg.pgd);
      const auto pt = attack::evaluate_attack(*cell.model, pgd,
                                              attack_set.images,
                                              attack_set.labels, eps,
                                              eval_cfg);
      const double energy = core::estimate_energy_nj(activity);
      std::printf("%-7.2f %-5lld %-8.3f %-8.3f %-12.0f %-12.0f %.1f\n", v_th,
                  static_cast<long long>(t), cell.clean_accuracy,
                  pt.robustness, activity.total_spikes_per_inference,
                  activity.synops_per_inference, energy);
      util::CsvWriter::Row row;
      row << v_th << t << cell.clean_accuracy << pt.robustness
          << activity.total_spikes_per_inference
          << activity.synops_per_inference << energy;
      csv.write(row);
    }
  }

  std::printf(
      "\ninterpretation: cells in the same robustness band can differ "
      "several-fold in synaptic events — pick the cheap robust one.\n");
  std::printf("csv: %s/ablation_energy.csv | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
