// Observability overhead micro-benchmarks (google-benchmark).
//
// The obs design contract is "near-zero overhead when off": a disabled
// metric macro costs one relaxed atomic load + predictable branch, and a
// disabled trace scope one relaxed load. These benchmarks measure that
// directly — the same instrumented loop with the registry/tracer enabled
// vs disabled, plus a realistic instrumented GEMM to bound the enabled
// overhead on an actual kernel (target: <= 2% on the workloads we ship).
#include <benchmark/benchmark.h>

#include <vector>

#include "obs/metrics.hpp"
#include "obs/sketch.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace snnsec;
using tensor::Shape;
using tensor::Tensor;

// Plain arithmetic loop, no instrumentation: the baseline unit of work.
double plain_work(std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i)
    acc += static_cast<double>(i % 7) * 1e-3;
  return acc;
}

void BM_UninstrumentedLoop(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    double acc = plain_work(n);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UninstrumentedLoop)->Arg(1024);

// One counter increment per iteration of the same loop.
void instrumented_loop(std::int64_t n, double* acc_out) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(i % 7) * 1e-3;
    SNNSEC_COUNTER_ADD("bench.obs.iterations", 1);
  }
  *acc_out = acc;
}

void BM_CounterPerIteration_Enabled(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  obs::Registry::instance().set_enabled(true);
  for (auto _ : state) {
    double acc = 0.0;
    instrumented_loop(n, &acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CounterPerIteration_Enabled)->Arg(1024);

void BM_CounterPerIteration_Disabled(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  obs::Registry::instance().set_enabled(false);
  for (auto _ : state) {
    double acc = 0.0;
    instrumented_loop(n, &acc);
    benchmark::DoNotOptimize(acc);
  }
  obs::Registry::instance().set_enabled(true);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CounterPerIteration_Disabled)->Arg(1024);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry::instance().set_enabled(true);
  double v = 0.0;
  for (auto _ : state) {
    SNNSEC_HISTOGRAM_OBSERVE("bench.obs.hist", v, 0.25, 0.5, 0.75);
    v = v < 1.0 ? v + 1e-3 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

// Trace scope cost per call: disabled (tracer stopped) vs enabled
// (buffered span). clear() between runs keeps memory bounded.
void BM_TraceScope_Disabled(benchmark::State& state) {
  obs::Tracer::instance().stop();
  obs::Tracer::instance().clear();
  for (auto _ : state) {
    SNNSEC_TRACE_SCOPE("bench.obs.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScope_Disabled);

void BM_TraceScope_Enabled(benchmark::State& state) {
  obs::Tracer::instance().start();
  for (auto _ : state) {
    SNNSEC_TRACE_SCOPE("bench.obs.span");
    benchmark::ClobberMemory();
  }
  obs::Tracer::instance().stop();
  obs::Tracer::instance().clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScope_Enabled);

// Realistic end-to-end check: the instrumented GEMM (trace scope + two
// counters inside tensor::matmul) with obs on vs off. The delta between
// these two is the enabled overhead on a real kernel; both should be
// within noise of each other at this size (target <= 2%).
void BM_InstrumentedGemm_Enabled(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(11);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  obs::Registry::instance().set_enabled(true);
  for (auto _ : state) {
    Tensor c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_InstrumentedGemm_Enabled)->Arg(128);

void BM_InstrumentedGemm_Disabled(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(11);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  obs::Registry::instance().set_enabled(false);
  for (auto _ : state) {
    Tensor c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  obs::Registry::instance().set_enabled(true);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_InstrumentedGemm_Disabled)->Arg(128);

// ---- sketch accumulation ---------------------------------------------------
// The per-request telemetry tax: ns per neuron-step of folding one spiking
// layer's (spikes, membrane) slab into the SketchAccumulator, vs the same
// slab walked with the sketch detached (the serve path's "off" cost is one
// null-pointer check, so the baseline is just touching the data).

// One synthetic time-slab of `batch` x `features` spikes + membranes.
struct SketchSlab {
  std::vector<float> z;
  std::vector<float> v;
  SketchSlab(std::int64_t batch, std::int64_t features) {
    const std::int64_t n = batch * features;
    z.resize(static_cast<std::size_t>(n));
    v.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      v[static_cast<std::size_t>(i)] =
          static_cast<float>((i % 37) - 12) * 0.1f;
      z[static_cast<std::size_t>(i)] =
          v[static_cast<std::size_t>(i)] > 1.0f ? 1.0f : 0.0f;
    }
  }
};

void BM_SketchAccumulate_On(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  const std::int64_t features = 1024;
  const SketchSlab slab(batch, features);
  obs::SketchAccumulator acc;
  acc.configure({{"lif0", 1.0}});
  for (auto _ : state) {
    acc.begin(batch);
    acc.accumulate(0, slab.z.data(), slab.v.data(), batch * features);
    acc.end_step();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * batch * features);
}
BENCHMARK(BM_SketchAccumulate_On)->Arg(1)->Arg(8);

void BM_SketchAccumulate_Off(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  const std::int64_t features = 1024;
  const SketchSlab slab(batch, features);
  for (auto _ : state) {
    // The detached path reads nothing — model the hot loop's cost floor as
    // one pass over the slab so the On/Off delta is the accumulation work.
    float sum = 0.0f;
    const std::int64_t n = batch * features;
    for (std::int64_t i = 0; i < n; ++i)
      sum += slab.z[static_cast<std::size_t>(i)];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch * features);
}
BENCHMARK(BM_SketchAccumulate_Off)->Arg(1)->Arg(8);

void BM_SketchFinalize(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  const std::int64_t features = 1024;
  const SketchSlab slab(batch, features);
  obs::SketchAccumulator acc;
  acc.configure({{"lif0", 1.0}});
  acc.begin(batch);
  for (int t = 0; t < 16; ++t) {
    acc.accumulate(0, slab.z.data(), slab.v.data(), batch * features);
    acc.end_step();
  }
  obs::ActivitySketch sketch;
  for (auto _ : state) {
    acc.finalize(0, sketch);
    benchmark::DoNotOptimize(sketch.steps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchFinalize)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
