// bench_serve: load generator + SLO recorder for the src/serve runtime.
//
// Trains a small spiking LeNet, stands the Server up in inline mode
// (single-threaded by default, like bench_runner, so numbers are comparable
// across runs), and drives it four ways:
//
//   closed-loop  N clients submit back-to-back -> sustained throughput and
//                p50/p95/p99 latency
//   open-loop    paced arrivals at 1.5x the measured closed-loop rate with
//                a per-request deadline -> truncation + shed under pressure
//   deadline     accuracy-vs-max_steps curve over the test split: the
//                anytime guarantee means row t equals a model built with
//                window T' = t
//   zero-alloc   operator-new hook asserts the warm request path performs
//                exactly zero heap allocations (process exits non-zero
//                otherwise)
//
// Emits BENCH_serve.json so the serving SLOs are CI-diffable.
//
// Usage: bench_serve [--smoke] [--out PATH]
//   --smoke   fewer requests / smaller model (CI smoke)
//   --out     output path (default BENCH_serve.json in the CWD)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "serve/server.hpp"
#include "serve_load.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/thread_pool.hpp"

// ---- allocation-counting hook ----------------------------------------------
// Same device as bench_runner: global new/delete replaced for this binary
// only, so "zero allocations in steady state" is a measured fact.
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace snnsec;
using bench::closed_loop;
using bench::curve_point;
using bench::CurvePoint;
using bench::LoadResult;
using bench::open_loop;
using bench::write_load;
using tensor::Tensor;

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke" || arg == "--quick") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_serve [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  // ---- model: train small, save, serve through the validated-load path.
  data::DataSpec dspec;
  dspec.train_n = smoke ? 200 : 800;
  dspec.test_n = smoke ? 60 : 150;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);

  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  snn::SnnConfig cfg;
  cfg.v_th = 1.0;
  // T=16 sits above the paper's learnability cliff (T=10 trains to chance
  // at this budget), so the truncation curve has real accuracy to trade.
  cfg.time_steps = smoke ? 10 : 16;
  util::Rng rng(42);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  nn::TrainConfig tcfg;
  tcfg.epochs = smoke ? 1 : 3;
  tcfg.lr = 4e-3;
  nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);
  const double train_acc =
      nn::accuracy(*model, bundle.test.images, bundle.test.labels);
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "snnsec_bench_serve.snnm")
          .string();
  snn::save_spiking_lenet(ckpt, *model, arch, cfg);
  model.reset();
  std::printf("model: T=%lld vth=%.1f | data %s | clean accuracy %.1f%%\n",
              static_cast<long long>(cfg.time_steps), cfg.v_th,
              bundle.source(), train_acc * 100);

  serve::ServerConfig scfg;
  scfg.model_path = ckpt;
  scfg.workers = 0;  // inline: comparable single-threaded numbers
  scfg.batcher.max_batch = 8;
  scfg.batcher.max_delay_us = 200;
  scfg.batcher.capacity = 64;
  serve::Server server(scfg);

  // ---- closed loop.
  const std::int64_t clients = smoke ? 2 : 4;
  const std::int64_t per_client = smoke ? 25 : 100;
  const LoadResult closed =
      closed_loop(server, bundle.test.images, clients, per_client);
  std::printf("closed loop: %lld clients x %lld -> %.1f req/s | p50 %.0fus "
              "p99 %.0fus | mean batch %.2f\n",
              static_cast<long long>(clients),
              static_cast<long long>(per_client), closed.throughput_rps,
              closed.p50_us, closed.p99_us, closed.mean_batch);

  // ---- open loop at 1.5x the measured closed-loop rate, with a deadline
  // at roughly the closed-loop p50 so pressure shows up as truncation.
  const double rate = std::max(50.0, closed.throughput_rps * 1.5);
  const std::int64_t deadline_us =
      std::max<std::int64_t>(500, static_cast<std::int64_t>(closed.p50_us));
  const std::int64_t open_total = smoke ? 60 : 300;
  const LoadResult open = open_loop(server, bundle.test.images, open_total,
                                    rate, deadline_us, clients * 2);
  std::printf("open loop: %.0f req/s offered, deadline %lldus -> %.1f req/s "
              "| p99 %.0fus | truncated %lld/%lld | shed %lld\n",
              rate, static_cast<long long>(deadline_us),
              open.throughput_rps, open.p99_us,
              static_cast<long long>(open.truncated),
              static_cast<long long>(open.completed),
              static_cast<long long>(open.shed));

  // ---- accuracy vs truncation depth (the anytime dial).
  // 1,2,3,4 then every other step: dense enough to locate the accuracy
  // cliff (spikes take several steps to propagate through the layer stack,
  // so early truncation is chance and the transition is steep).
  std::vector<CurvePoint> curve;
  for (std::int64_t steps = 1; steps <= cfg.time_steps;
       steps = steps < 4 ? steps + 1 : steps + 2) {
    curve.push_back(curve_point(server, bundle, steps));
    if (steps < cfg.time_steps && steps + 2 > cfg.time_steps)
      curve.push_back(curve_point(server, bundle, cfg.time_steps));
  }
  for (const CurvePoint& p : curve)
    std::printf("  max_steps %2lld/%lld: accuracy %5.1f%% | mean latency "
                "%6.0fus\n",
                static_cast<long long>(p.max_steps),
                static_cast<long long>(cfg.time_steps), p.accuracy * 100,
                p.mean_latency_us);

  // ---- zero-alloc steady state: warm the path, then a fixed-geometry
  // request stream must never touch the heap.
  std::int64_t steady_allocs = 0;
  {
    const Tensor x = nn::slice_batch(bundle.test.images, 0, 1);
    serve::InferResult r;
    for (int i = 0; i < 5; ++i) server.infer(x, serve::RequestOptions{}, r);
    const std::int64_t before = g_allocs.load();
    for (int i = 0; i < 20; ++i) server.infer(x, serve::RequestOptions{}, r);
    steady_allocs = g_allocs.load() - before;
    std::printf("steady-state allocs over 20 requests: %lld\n",
                static_cast<long long>(steady_allocs));
  }
  server.stop();
  const serve::ServerStats stats = server.stats();

  // ---- JSON.
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_serve: cannot open %s for writing\n",
                 out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"threads\": %zu,\n", util::ThreadPool::global().size());
  std::fprintf(f,
               "  \"model\": {\"time_steps\": %lld, \"v_th\": %.2f, "
               "\"data\": \"%s\", \"clean_accuracy\": %.4f},\n",
               static_cast<long long>(cfg.time_steps), cfg.v_th,
               bundle.source(), train_acc);
  char extra[96];
  std::snprintf(extra, sizeof extra, ", \"clients\": %lld",
                static_cast<long long>(clients));
  write_load(f, "closed_loop", closed, extra);
  std::snprintf(extra, sizeof extra,
                ", \"offered_rps\": %.1f, \"deadline_us\": %lld", rate,
                static_cast<long long>(deadline_us));
  write_load(f, "open_loop", open, extra);
  std::fprintf(f, "  \"deadline_curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i)
    std::fprintf(f,
                 "    {\"max_steps\": %lld, \"accuracy\": %.4f, "
                 "\"mean_latency_us\": %.0f}%s\n",
                 static_cast<long long>(curve[i].max_steps),
                 curve[i].accuracy, curve[i].mean_latency_us,
                 i + 1 < curve.size() ? "," : "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"server\": {\"completed\": %lld, \"shed\": %lld, "
               "\"errors\": %lld, \"batches\": %lld},\n",
               static_cast<long long>(stats.completed),
               static_cast<long long>(stats.shed),
               static_cast<long long>(stats.errors),
               static_cast<long long>(stats.batches));
  std::fprintf(f, "  \"steady_state_allocs\": %lld\n",
               static_cast<long long>(steady_allocs));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  if (steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: serve request path allocated %lld times in steady "
                 "state (expected 0)\n",
                 static_cast<long long>(steady_allocs));
    return 1;
  }
  if (stats.errors != 0) {
    std::fprintf(stderr, "FAIL: %lld requests errored\n",
                 static_cast<long long>(stats.errors));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-threaded by default so throughput/latency are comparable across
  // machines; export SNNSEC_THREADS before invoking to measure scaling.
  setenv("SNNSEC_THREADS", "1", /*overwrite=*/0);
  return run(argc, argv);
}
