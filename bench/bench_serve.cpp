// bench_serve: load generator + SLO recorder for the src/serve runtime.
//
// Trains a small spiking LeNet, stands the Server up in inline mode
// (single-threaded by default, like bench_runner, so numbers are comparable
// across runs), and drives it four ways:
//
//   closed-loop  N clients submit back-to-back -> sustained throughput and
//                p50/p95/p99 latency
//   open-loop    paced arrivals at 1.5x the measured closed-loop rate with
//                a per-request deadline -> truncation + shed under pressure
//   deadline     accuracy-vs-max_steps curve over the test split: the
//                anytime guarantee means row t equals a model built with
//                window T' = t
//   zero-alloc   operator-new hook asserts the warm request path performs
//                exactly zero heap allocations (process exits non-zero
//                otherwise)
//
// Emits BENCH_serve.json so the serving SLOs are CI-diffable.
//
// Usage: bench_serve [--smoke] [--out PATH]
//   --smoke   fewer requests / smaller model (CI smoke)
//   --out     output path (default BENCH_serve.json in the CWD)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "serve/server.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/thread_pool.hpp"

// ---- allocation-counting hook ----------------------------------------------
// Same device as bench_runner: global new/delete replaced for this binary
// only, so "zero allocations in steady state" is a measured fact.
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace snnsec;
using tensor::Tensor;

using Clock = std::chrono::steady_clock;

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LoadResult {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t truncated = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
};

struct CurvePoint {
  std::int64_t max_steps = 0;
  double accuracy = 0.0;
  double mean_latency_us = 0.0;
};

void finish_percentiles(LoadResult& r, std::vector<double>& latencies) {
  std::sort(latencies.begin(), latencies.end());
  r.p50_us = percentile(latencies, 0.50);
  r.p95_us = percentile(latencies, 0.95);
  r.p99_us = percentile(latencies, 0.99);
}

/// Closed loop: `clients` threads each fire `per_client` back-to-back
/// requests cycling through the test images.
LoadResult closed_loop(serve::Server& server, const Tensor& images,
                       std::int64_t clients, std::int64_t per_client) {
  LoadResult out;
  out.offered = clients * per_client;
  const std::int64_t n_images = images.dim(0);
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::int64_t> batch_sum(static_cast<std::size_t>(clients), 0);
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> truncated{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  for (std::int64_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      auto& samples = lat[static_cast<std::size_t>(c)];
      samples.reserve(static_cast<std::size_t>(per_client));
      serve::InferResult r;
      for (std::int64_t i = 0; i < per_client; ++i) {
        const std::int64_t idx = (c * per_client + i) % n_images;
        const Tensor x = nn::slice_batch(images, idx, idx + 1);
        if (!server.infer(x, serve::RequestOptions{}, r)) continue;
        completed.fetch_add(1, std::memory_order_relaxed);
        if (r.truncated) truncated.fetch_add(1, std::memory_order_relaxed);
        samples.push_back(static_cast<double>(r.latency_us));
        batch_sum[static_cast<std::size_t>(c)] += r.batch_size;
      }
    });
  }
  for (auto& t : pool) t.join();
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  out.completed = completed.load();
  out.truncated = truncated.load();
  std::vector<double> all;
  std::int64_t batches = 0;
  for (std::int64_t c = 0; c < clients; ++c) {
    const auto& samples = lat[static_cast<std::size_t>(c)];
    all.insert(all.end(), samples.begin(), samples.end());
    batches += batch_sum[static_cast<std::size_t>(c)];
  }
  out.shed = out.offered - out.completed;
  out.throughput_rps =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0.0;
  out.mean_batch = out.completed > 0 ? static_cast<double>(batches) /
                                           static_cast<double>(out.completed)
                                     : 0.0;
  finish_percentiles(out, all);
  return out;
}

/// Open loop: arrivals paced at `rate_rps` across a submitter pool, each
/// request carrying `deadline_us`. When the offered rate exceeds capacity
/// the submitters saturate and deadlines start truncating the time window.
LoadResult open_loop(serve::Server& server, const Tensor& images,
                     std::int64_t total, double rate_rps,
                     std::int64_t deadline_us, std::int64_t submitters) {
  LoadResult out;
  out.offered = total;
  const std::int64_t n_images = images.dim(0);
  const double interval_us = 1e6 / std::max(rate_rps, 1.0);
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(submitters));
  std::atomic<std::int64_t> next_tick{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> truncated{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  for (std::int64_t c = 0; c < submitters; ++c) {
    pool.emplace_back([&, c] {
      auto& samples = lat[static_cast<std::size_t>(c)];
      samples.reserve(static_cast<std::size_t>(total));
      serve::InferResult r;
      serve::RequestOptions opt;
      opt.deadline_us = deadline_us;
      for (;;) {
        const std::int64_t tick =
            next_tick.fetch_add(1, std::memory_order_relaxed);
        if (tick >= total) break;
        const auto due =
            t0 + std::chrono::microseconds(static_cast<std::int64_t>(
                     interval_us * static_cast<double>(tick)));
        std::this_thread::sleep_until(due);
        const Tensor x =
            nn::slice_batch(images, tick % n_images, tick % n_images + 1);
        if (!server.infer(x, opt, r)) {
          shed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        if (r.truncated) truncated.fetch_add(1, std::memory_order_relaxed);
        samples.push_back(static_cast<double>(r.latency_us));
      }
    });
  }
  for (auto& t : pool) t.join();
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  out.completed = completed.load();
  out.shed = shed.load();
  out.truncated = truncated.load();
  out.throughput_rps =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0.0;
  std::vector<double> all;
  for (auto& samples : lat) all.insert(all.end(), samples.begin(),
                                       samples.end());
  finish_percentiles(out, all);
  return out;
}

/// Serve the whole test split sequentially at a fixed step budget.
CurvePoint curve_point(serve::Server& server, const data::DataBundle& bundle,
                       std::int64_t max_steps) {
  CurvePoint p;
  p.max_steps = max_steps;
  serve::RequestOptions opt;
  opt.max_steps = max_steps;
  serve::InferResult r;
  const std::int64_t n = bundle.test.images.dim(0);
  std::int64_t correct = 0;
  std::int64_t latency_sum = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor x = nn::slice_batch(bundle.test.images, i, i + 1);
    if (!server.infer(x, opt, r)) continue;
    if (r.pred == bundle.test.labels[static_cast<std::size_t>(i)]) ++correct;
    latency_sum += r.latency_us;
  }
  p.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  p.mean_latency_us =
      static_cast<double>(latency_sum) / static_cast<double>(n);
  return p;
}

void write_load(std::FILE* f, const char* key, const LoadResult& r,
                const char* extra) {
  std::fprintf(f,
               "  \"%s\": {\"offered\": %lld, \"completed\": %lld, "
               "\"shed\": %lld, \"truncated\": %lld, \"wall_s\": %.3f, "
               "\"throughput_rps\": %.1f, \"p50_us\": %.0f, \"p95_us\": "
               "%.0f, \"p99_us\": %.0f, \"mean_batch\": %.2f%s},\n",
               key, static_cast<long long>(r.offered),
               static_cast<long long>(r.completed),
               static_cast<long long>(r.shed),
               static_cast<long long>(r.truncated), r.wall_s,
               r.throughput_rps, r.p50_us, r.p95_us, r.p99_us, r.mean_batch,
               extra);
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke" || arg == "--quick") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_serve [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  // ---- model: train small, save, serve through the validated-load path.
  data::DataSpec dspec;
  dspec.train_n = smoke ? 200 : 800;
  dspec.test_n = smoke ? 60 : 150;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);

  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  snn::SnnConfig cfg;
  cfg.v_th = 1.0;
  // T=16 sits above the paper's learnability cliff (T=10 trains to chance
  // at this budget), so the truncation curve has real accuracy to trade.
  cfg.time_steps = smoke ? 10 : 16;
  util::Rng rng(42);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  nn::TrainConfig tcfg;
  tcfg.epochs = smoke ? 1 : 3;
  tcfg.lr = 4e-3;
  nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);
  const double train_acc =
      nn::accuracy(*model, bundle.test.images, bundle.test.labels);
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "snnsec_bench_serve.snnm")
          .string();
  snn::save_spiking_lenet(ckpt, *model, arch, cfg);
  model.reset();
  std::printf("model: T=%lld vth=%.1f | data %s | clean accuracy %.1f%%\n",
              static_cast<long long>(cfg.time_steps), cfg.v_th,
              bundle.source(), train_acc * 100);

  serve::ServerConfig scfg;
  scfg.model_path = ckpt;
  scfg.workers = 0;  // inline: comparable single-threaded numbers
  scfg.batcher.max_batch = 8;
  scfg.batcher.max_delay_us = 200;
  scfg.batcher.capacity = 64;
  serve::Server server(scfg);

  // ---- closed loop.
  const std::int64_t clients = smoke ? 2 : 4;
  const std::int64_t per_client = smoke ? 25 : 100;
  const LoadResult closed =
      closed_loop(server, bundle.test.images, clients, per_client);
  std::printf("closed loop: %lld clients x %lld -> %.1f req/s | p50 %.0fus "
              "p99 %.0fus | mean batch %.2f\n",
              static_cast<long long>(clients),
              static_cast<long long>(per_client), closed.throughput_rps,
              closed.p50_us, closed.p99_us, closed.mean_batch);

  // ---- open loop at 1.5x the measured closed-loop rate, with a deadline
  // at roughly the closed-loop p50 so pressure shows up as truncation.
  const double rate = std::max(50.0, closed.throughput_rps * 1.5);
  const std::int64_t deadline_us =
      std::max<std::int64_t>(500, static_cast<std::int64_t>(closed.p50_us));
  const std::int64_t open_total = smoke ? 60 : 300;
  const LoadResult open = open_loop(server, bundle.test.images, open_total,
                                    rate, deadline_us, clients * 2);
  std::printf("open loop: %.0f req/s offered, deadline %lldus -> %.1f req/s "
              "| p99 %.0fus | truncated %lld/%lld | shed %lld\n",
              rate, static_cast<long long>(deadline_us),
              open.throughput_rps, open.p99_us,
              static_cast<long long>(open.truncated),
              static_cast<long long>(open.completed),
              static_cast<long long>(open.shed));

  // ---- accuracy vs truncation depth (the anytime dial).
  // 1,2,3,4 then every other step: dense enough to locate the accuracy
  // cliff (spikes take several steps to propagate through the layer stack,
  // so early truncation is chance and the transition is steep).
  std::vector<CurvePoint> curve;
  for (std::int64_t steps = 1; steps <= cfg.time_steps;
       steps = steps < 4 ? steps + 1 : steps + 2) {
    curve.push_back(curve_point(server, bundle, steps));
    if (steps < cfg.time_steps && steps + 2 > cfg.time_steps)
      curve.push_back(curve_point(server, bundle, cfg.time_steps));
  }
  for (const CurvePoint& p : curve)
    std::printf("  max_steps %2lld/%lld: accuracy %5.1f%% | mean latency "
                "%6.0fus\n",
                static_cast<long long>(p.max_steps),
                static_cast<long long>(cfg.time_steps), p.accuracy * 100,
                p.mean_latency_us);

  // ---- zero-alloc steady state: warm the path, then a fixed-geometry
  // request stream must never touch the heap.
  std::int64_t steady_allocs = 0;
  {
    const Tensor x = nn::slice_batch(bundle.test.images, 0, 1);
    serve::InferResult r;
    for (int i = 0; i < 5; ++i) server.infer(x, serve::RequestOptions{}, r);
    const std::int64_t before = g_allocs.load();
    for (int i = 0; i < 20; ++i) server.infer(x, serve::RequestOptions{}, r);
    steady_allocs = g_allocs.load() - before;
    std::printf("steady-state allocs over 20 requests: %lld\n",
                static_cast<long long>(steady_allocs));
  }
  server.stop();
  const serve::ServerStats stats = server.stats();

  // ---- JSON.
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_serve: cannot open %s for writing\n",
                 out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"threads\": %zu,\n", util::ThreadPool::global().size());
  std::fprintf(f,
               "  \"model\": {\"time_steps\": %lld, \"v_th\": %.2f, "
               "\"data\": \"%s\", \"clean_accuracy\": %.4f},\n",
               static_cast<long long>(cfg.time_steps), cfg.v_th,
               bundle.source(), train_acc);
  char extra[96];
  std::snprintf(extra, sizeof extra, ", \"clients\": %lld",
                static_cast<long long>(clients));
  write_load(f, "closed_loop", closed, extra);
  std::snprintf(extra, sizeof extra,
                ", \"offered_rps\": %.1f, \"deadline_us\": %lld", rate,
                static_cast<long long>(deadline_us));
  write_load(f, "open_loop", open, extra);
  std::fprintf(f, "  \"deadline_curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i)
    std::fprintf(f,
                 "    {\"max_steps\": %lld, \"accuracy\": %.4f, "
                 "\"mean_latency_us\": %.0f}%s\n",
                 static_cast<long long>(curve[i].max_steps),
                 curve[i].accuracy, curve[i].mean_latency_us,
                 i + 1 < curve.size() ? "," : "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"server\": {\"completed\": %lld, \"shed\": %lld, "
               "\"errors\": %lld, \"batches\": %lld},\n",
               static_cast<long long>(stats.completed),
               static_cast<long long>(stats.shed),
               static_cast<long long>(stats.errors),
               static_cast<long long>(stats.batches));
  std::fprintf(f, "  \"steady_state_allocs\": %lld\n",
               static_cast<long long>(steady_allocs));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  if (steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: serve request path allocated %lld times in steady "
                 "state (expected 0)\n",
                 static_cast<long long>(steady_allocs));
    return 1;
  }
  if (stats.errors != 0) {
    std::fprintf(stderr, "FAIL: %lld requests errored\n",
                 static_cast<long long>(stats.errors));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-threaded by default so throughput/latency are comparable across
  // machines; export SNNSEC_THREADS before invoking to measure scaling.
  setenv("SNNSEC_THREADS", "1", /*overwrite=*/0);
  return run(argc, argv);
}
