// Ablation A2 (design-choice study, not a paper figure): spike encoder
// choice — the differentiable constant-current LIF encoder the paper's
// pipeline uses vs stochastic Poisson rate coding with straight-through
// gradients. Bagheri et al. (cited as [34]) showed encoding changes
// white-box sensitivity; this bench quantifies it on our substrate.
#include <cstdio>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  cfg.v_th_grid = {1.0};
  cfg.t_grid = {util::full_profile_enabled() ? 64 : 24};
  bench::print_banner("Ablation A2", "encoder choice vs robustness", cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  const std::vector<double> epsilons =
      util::full_profile_enabled() ? std::vector<double>{0.5, 1.0}
                                   : std::vector<double>{0.1, 0.2};

  data::Dataset attack_set = data.test;
  if (cfg.attack_test_cap > 0 && attack_set.size() > cfg.attack_test_cap)
    attack_set = attack_set.take(cfg.attack_test_cap);
  attack::EvalConfig eval_cfg;
  eval_cfg.batch_size = cfg.eval_batch;

  util::CsvWriter csv(bench::out_dir() + "/ablation_encoding.csv");
  {
    std::vector<std::string> header{"encoder", "clean_accuracy"};
    for (const double eps : epsilons)
      header.push_back("robustness_eps_" + util::format_float(eps, 2));
    csv.write_header(header);
  }

  struct Variant {
    const char* name;
    snn::EncoderKind kind;
  };
  const Variant variants[] = {
      {"constant-current-lif", snn::EncoderKind::kConstantCurrentLif},
      {"poisson", snn::EncoderKind::kPoisson},
  };

  std::printf("\n%-22s %-10s", "encoder", "clean");
  for (const double eps : epsilons) std::printf(" rob@%.2f", eps);
  std::printf("\n");

  for (const Variant& variant : variants) {
    core::ExplorationConfig ecfg = cfg;
    ecfg.snn_template.encoder = variant.kind;
    core::RobustnessExplorer explorer(ecfg, bench::cache_dir());
    auto cell = explorer.train_cell(ecfg.v_th_grid[0], ecfg.t_grid[0], data);
    std::printf("%-22s %-10.3f", variant.name, cell.clean_accuracy);
    util::CsvWriter::Row row;
    row << variant.name << cell.clean_accuracy;
    for (const double eps : epsilons) {
      attack::Pgd pgd(ecfg.pgd);
      const auto pt = attack::evaluate_attack(*cell.model, pgd,
                                              attack_set.images,
                                              attack_set.labels, eps,
                                              eval_cfg);
      std::printf(" %-8.3f", pt.robustness);
      row << pt.robustness;
    }
    std::printf("\n");
    csv.write(row);
  }

  std::printf("\ncsv: %s/ablation_encoding.csv | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
