// Figure 9: robustness-vs-ε curves for selected (V_th, T) combinations
// against the LeNet CNN. Claims to reproduce:
//   (1) the best combination beats the CNN by a large margin at high ε
//       (paper: up to ~85% higher robustness for (1, 48)),
//   (2) a badly chosen combination (paper: (2.25, 56)) is WORSE than the
//       CNN — structural parameters make or break the inherent robustness,
//   (3) curves with similar clean accuracy diverge under attack.
//
// Tracked combinations (paper -> quick-profile mapping of the T axis):
//   (1, 48) -> (1.0, 32)   expected high robustness
//   (1, 32) -> (1.0, 16)   expected medium
//   (2.25, 56) -> (0.5, 32) expected low (our fragile corner is low V_th)
//   (0.75, 72) -> (2.0, 32) expected high
#include <cstdio>
#include <vector>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "bench_common.hpp"
#include "core/baseline.hpp"
#include "core/explorer.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  bench::print_banner("Fig. 9",
                      "robustness curves: selected (V_th, T) SNNs vs CNN",
                      cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  struct Combo {
    double v_th;
    std::int64_t t;
  };
  const std::vector<Combo> combos =
      util::full_profile_enabled()
          ? std::vector<Combo>{{1.0, 48}, {1.0, 32}, {2.25, 56}, {0.75, 72}}
          : std::vector<Combo>{{1.0, 32}, {1.0, 16}, {0.5, 32}, {2.0, 32}};

  core::RobustnessExplorer explorer(cfg, bench::cache_dir());
  std::printf("\ntraining CNN baseline...\n");
  const auto cnn = core::train_cnn_baseline(cfg, data);
  std::printf("CNN clean accuracy: %.3f\n", cnn.clean_accuracy);

  std::vector<core::RobustnessExplorer::TrainedCell> cells;
  for (const auto& combo : combos) {
    auto cell = explorer.train_cell(combo.v_th, combo.t, data);
    std::printf("SNN (V_th=%.2f, T=%lld): clean accuracy %.3f%s\n",
                combo.v_th, static_cast<long long>(combo.t),
                cell.clean_accuracy, cell.from_cache ? " (cached)" : "");
    cells.push_back(std::move(cell));
  }

  data::Dataset attack_set = data.test;
  if (cfg.attack_test_cap > 0 && attack_set.size() > cfg.attack_test_cap)
    attack_set = attack_set.take(cfg.attack_test_cap);
  attack::EvalConfig eval_cfg;
  eval_cfg.batch_size = cfg.eval_batch;
  const auto epsilons = bench::curve_epsilons();

  util::CsvWriter csv(bench::out_dir() + "/fig9_robustness_curves.csv");
  {
    std::vector<std::string> header{"epsilon", "cnn"};
    for (const auto& combo : combos) {
      char name[48];
      std::snprintf(name, sizeof(name), "snn_vth%.2f_T%lld", combo.v_th,
                    static_cast<long long>(combo.t));
      header.emplace_back(name);
    }
    csv.write_header(header);
  }

  std::printf("\n%-9s %-8s", "epsilon", "CNN");
  for (const auto& combo : combos)
    std::printf(" (%.2f,%lld)", combo.v_th, static_cast<long long>(combo.t));
  std::printf("\n");

  std::vector<util::PlotSeries> plot_series;
  plot_series.push_back({"CNN", {}});
  for (const auto& combo : combos) {
    char pname[48];
    std::snprintf(pname, sizeof(pname), "(%.2g,%lld)", combo.v_th,
                  static_cast<long long>(combo.t));
    plot_series.push_back({pname, {}});
  }
  double best_gap = 0.0;
  double worst_gap = 0.0;
  for (const double eps : epsilons) {
    attack::Pgd pgd_cnn(cfg.pgd);
    const auto pt_cnn = attack::evaluate_attack(
        *cnn.model, pgd_cnn, attack_set.images, attack_set.labels, eps,
        eval_cfg);
    std::printf("%-9.3f %-8.3f", eps, pt_cnn.robustness);
    plot_series[0].y.push_back(pt_cnn.robustness);
    std::size_t series_idx = 1;
    util::CsvWriter::Row row;
    row << eps << pt_cnn.robustness;
    for (auto& cell : cells) {
      attack::Pgd pgd(cfg.pgd);
      const auto pt = attack::evaluate_attack(*cell.model, pgd,
                                              attack_set.images,
                                              attack_set.labels, eps,
                                              eval_cfg);
      std::printf(" %-10.3f", pt.robustness);
      plot_series[series_idx++].y.push_back(pt.robustness);
      row << pt.robustness;
      if (eps > 0.0) {
        best_gap = std::max(best_gap, pt.robustness - pt_cnn.robustness);
        worst_gap = std::min(worst_gap, pt.robustness - pt_cnn.robustness);
      }
    }
    std::printf("\n");
    csv.write(row);
  }

  util::PlotOptions plot_opts;
  plot_opts.x_label = "eps";
  std::printf("\n%s", util::ascii_plot(epsilons, plot_series,
                                        plot_opts).c_str());
  std::printf(
      "\nsummary: best SNN-over-CNN gap %.1f%% (paper: up to ~85%%); "
      "worst gap %.1f%% (paper: one combination falls below the CNN)\n",
      best_gap * 100, worst_gap * 100);
  std::printf("csv: %s/fig9_robustness_curves.csv | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
