// bench_fleet: fleet-scale serving harness for the sharded (Vth, T)
// ensemble. Emits BENCH_fleet.json so routing, quota, ensemble robustness
// and self-healing behaviour are CI-diffable.
//
// Trains three (Vth, T) cells picked from the learnable region of the
// fig6 grid — (0.5, 16) low-latency, (1.0, 24) balanced, (2.0, 32)
// hardened — then:
//
//   adversarial   splits the test set into thirds and attacks each third
//                 white-box (PGD, quick profile) against one cell's
//                 surrogate. Records the full cell x third transfer
//                 matrix, each cell's accuracy over the whole mixed
//                 adversarial set, and the hostile-tenant ensemble vote.
//                 Gate (full mode): ensemble accuracy strictly above the
//                 best single cell.
//   load          ~1M mixed-tenant requests closed-loop through the
//                 router: trusted traffic rides the low-latency cliff
//                 budget, suspect traffic the hardened cell, a sliver of
//                 hostile traffic the ensemble, and a quota-capped tenant
//                 supplies the bulk of the offered volume (admission
//                 rejects happen before any model work, so offered load
//                 can exceed model throughput by orders of magnitude).
//                 Gates: offered >= target, zero errors, quota enforced.
//   zero-alloc    after warm-up, 20 trusted routes, 20 quota rejects and
//                 20 ensemble votes must perform zero heap allocations
//                 (operator-new hook).
//   chaos         a separate supervised fleet with chaos armed on one
//                 replica of the hardened group; weight bit-flips are
//                 injected mid-replay. Gates: the faulted replica is
//                 quarantined AND respawned with zero client-visible
//                 errors.
//   tcp           the same router behind a loopback fleet::Frontend,
//                 driven by the shared loadgen over the binary wire
//                 protocol. Gates: every request answered, zero malformed
//                 frames.
//
// Usage: bench_fleet [--smoke] [--out PATH]
//   --smoke   fewer requests / 1-epoch cells / accuracy gates relaxed (CI)
//   --out     output path (default BENCH_fleet.json in the CWD)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attacks/pgd.hpp"
#include "data/provider.hpp"
#include "faults/fault.hpp"
#include "fleet/frontend.hpp"
#include "fleet/loadgen.hpp"
#include "fleet/router.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "serve/server.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/thread_pool.hpp"

// ---- allocation-counting hook ----------------------------------------------
// Same device as bench_serve/bench_chaos: global new/delete replaced for
// this binary only, so "zero allocations on the steady request path" is a
// measured fact rather than a code-review claim.
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace snnsec;
using tensor::Tensor;

// Tenant convention shared with snnsec_fleet: 1 trusted, 2 suspect,
// 3 hostile; 4 is the quota-capped bulk tenant, 5 a fixed-budget tenant
// reserved for the allocation gate (its bucket never refills).
constexpr std::uint64_t kTrustedTenant = 1;
constexpr std::uint64_t kSuspectTenant = 2;
constexpr std::uint64_t kHostileTenant = 3;
constexpr std::uint64_t kBulkTenant = 4;
constexpr std::uint64_t kBudgetTenant = 5;

struct CellPlan {
  const char* name;
  fleet::GroupRole role;
  double v_th;
  std::int64_t time_steps;
};

struct CellState {
  CellPlan plan;
  std::string checkpoint;
  double clean_accuracy = 0.0;
  std::unique_ptr<snn::SpikingClassifier> surrogate;  // white-box copy
};

/// Shared state between the replay driver and a replica's chaos hook
/// (bench_chaos pattern): inject exactly once, never onto a replica that
/// has already been respawned, so healing stays observable.
struct ChaosControl {
  std::atomic<bool> enabled{false};
  std::atomic<bool> injected{false};
  std::function<void(snn::SpikingClassifier&)> inject;
};

serve::ChaosHook make_hook(ChaosControl& ctl) {
  return [&ctl](const serve::ChaosContext& ctx) {
    if (!ctl.enabled.load(std::memory_order_relaxed)) return;
    if (ctx.respawns > 0) return;
    if (ctl.injected.exchange(true)) return;
    ctl.inject(*ctx.model);
  };
}

serve::ServerConfig replica_config() {
  serve::ServerConfig scfg;
  scfg.workers = 0;  // fleet submitters drive inline micro-batches
  scfg.batcher.max_batch = 8;
  scfg.batcher.max_delay_us = 200;
  scfg.batcher.capacity = 64;
  scfg.supervisor.enabled = true;
  return scfg;
}

fleet::RouterConfig fleet_config(const std::vector<CellState>& cells) {
  fleet::RouterConfig rc;
  for (const CellState& c : cells) {
    fleet::GroupConfig gc;
    gc.name = c.plan.name;
    gc.role = c.plan.role;
    gc.model_path = c.checkpoint;
    gc.replicas = 1;
    gc.server = replica_config();
    rc.groups.push_back(gc);
  }
  rc.tenants.push_back({kTrustedTenant, fleet::Threat::kTrusted, 0, 0});
  rc.tenants.push_back({kSuspectTenant, fleet::Threat::kSuspect, 0, 0});
  rc.tenants.push_back({kHostileTenant, fleet::Threat::kHostile, 0, 0});
  rc.tenants.push_back({kBulkTenant, fleet::Threat::kTrusted, 100.0, 100.0});
  rc.tenants.push_back({kBudgetTenant, fleet::Threat::kTrusted, 0.0, 3.0});
  rc.default_tenant.threat = fleet::Threat::kTrusted;
  return rc;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke" || arg == "--quick") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fleet [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  // ---- cells: the fig6 learnability recipe (image 16, half-width LeNet,
  // lr 4e-3) at three points spanning the (Vth, T) grid's learnable region.
  data::DataSpec dspec;
  dspec.train_n = smoke ? 200 : 1000;
  dspec.test_n = smoke ? 60 : 200;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);

  std::vector<CellState> cells;
  cells.push_back({{"low", fleet::GroupRole::kLowLatency, 0.5, 16}, {}, 0,
                   nullptr});
  cells.push_back({{"balanced", fleet::GroupRole::kBalanced, 1.0, 24}, {}, 0,
                   nullptr});
  cells.push_back({{"hardened", fleet::GroupRole::kHardened, 2.0, 32}, {}, 0,
                   nullptr});

  for (std::size_t i = 0; i < cells.size(); ++i) {
    CellState& c = cells[i];
    nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
    arch.image_size = 16;
    snn::SnnConfig cfg;
    cfg.v_th = c.plan.v_th;
    cfg.time_steps = c.plan.time_steps;
    util::Rng rng(42 + static_cast<std::uint64_t>(i));
    auto model = snn::build_spiking_lenet(arch, cfg, rng);
    nn::TrainConfig tcfg;
    tcfg.epochs = smoke ? 1 : 5;
    tcfg.lr = 4e-3;
    nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);
    c.clean_accuracy =
        nn::accuracy(*model, bundle.test.images, bundle.test.labels);
    c.checkpoint = (std::filesystem::temp_directory_path() /
                    ("snnsec_bench_fleet_" + std::string(c.plan.name) +
                     ".snnm"))
                       .string();
    snn::save_spiking_lenet(c.checkpoint, *model, arch, cfg);
    c.surrogate = std::move(model);
    std::printf("cell %-8s vth=%.1f T=%-2lld clean accuracy %.1f%%\n",
                c.plan.name, c.plan.v_th,
                static_cast<long long>(c.plan.time_steps),
                c.clean_accuracy * 100);
  }
  const double best_clean =
      std::max({cells[0].clean_accuracy, cells[1].clean_accuracy,
                cells[2].clean_accuracy});
  // Accuracy gates only bind when the cells actually trained (full mode):
  // 1-epoch smoke cells cannot support a robustness comparison.
  const bool acc_gates_active = !smoke && best_clean >= 0.5;

  fleet::Router router(fleet_config(cells));

  // ---- A. adversarial ensemble: thirds of the test set, each attacked
  // white-box against one cell (the mixed-attacker population an open
  // endpoint actually faces — nobody tells the attacker which cell serves
  // them). Quick attack profile: eps 0.1 on [0,1] pixels, 10 PGD steps.
  const double eps = 0.1;
  const std::int64_t pgd_steps = smoke ? 5 : 10;
  const std::int64_t adv_per_cell =
      std::min<std::int64_t>(smoke ? 4 : 40, bundle.test.images.dim(0) / 3);
  const std::int64_t adv_n = adv_per_cell * 3;

  std::vector<Tensor> adv_thirds;
  std::vector<std::vector<std::int64_t>> adv_labels;
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const std::int64_t a = static_cast<std::int64_t>(k) * adv_per_cell;
    const std::int64_t b = a + adv_per_cell;
    const Tensor clean = nn::slice_batch(bundle.test.images, a, b);
    std::vector<std::int64_t> labels(
        bundle.test.labels.begin() + a, bundle.test.labels.begin() + b);
    attack::PgdConfig pc;
    pc.steps = pgd_steps;
    pc.rel_stepsize = 0.1;
    pc.seed = 99 + k;
    attack::Pgd pgd(pc);
    attack::AttackBudget budget;
    budget.epsilon = eps;
    adv_thirds.push_back(
        pgd.perturb(*cells[k].surrogate, clean, labels, budget));
    adv_labels.push_back(std::move(labels));
  }

  // Transfer matrix: matrix[g][k] = cell g's accuracy on the third attacked
  // against cell k. Diagonal = white-box self-attack, off-diagonal =
  // transfer across (Vth, T) cells.
  double matrix[3][3] = {};
  double single_cell[3] = {};
  for (std::size_t g = 0; g < cells.size(); ++g) {
    for (std::size_t k = 0; k < cells.size(); ++k) {
      matrix[g][k] = nn::accuracy(*cells[g].surrogate, adv_thirds[k],
                                  adv_labels[k]);
      single_cell[g] += matrix[g][k] / 3.0;
    }
  }
  const double best_single =
      std::max({single_cell[0], single_cell[1], single_cell[2]});

  // Ensemble vote over the same mixed adversarial set, through the router's
  // hostile-tenant path (majority over all cells, tie -> highest Vth).
  std::int64_t ens_correct = 0;
  std::int64_t ens_ties = 0;
  {
    fleet::FleetResult fr;
    for (std::size_t k = 0; k < cells.size(); ++k) {
      for (std::int64_t i = 0; i < adv_per_cell; ++i) {
        const Tensor x = nn::slice_batch(adv_thirds[k], i, i + 1);
        if (router.infer(kHostileTenant, x, serve::RequestOptions{}, fr) &&
            fr.result.pred ==
                adv_labels[k][static_cast<std::size_t>(i)])
          ++ens_correct;
        if (fr.tie_break) ++ens_ties;
      }
    }
  }
  const double ensemble_acc =
      static_cast<double>(ens_correct) / static_cast<double>(adv_n);
  std::printf("adversarial (eps %.2f, %lld PGD steps, %lld samples):\n",
              eps, static_cast<long long>(pgd_steps),
              static_cast<long long>(adv_n));
  for (std::size_t g = 0; g < cells.size(); ++g)
    std::printf("  cell %-8s self %5.1f%% | mixed-set %5.1f%%\n",
                cells[g].plan.name, matrix[g][g] * 100,
                single_cell[g] * 100);
  std::printf("  ensemble %5.1f%% (best single %5.1f%%, ties %lld)\n",
              ensemble_acc * 100, best_single * 100,
              static_cast<long long>(ens_ties));

  // ---- B. ~1M mixed-tenant requests. The bulk tenant's token bucket
  // admits ~100 rps and rejects the rest before any model work, so offered
  // volume is decoupled from model throughput; the other tenants exercise
  // the three routing paths at full depth.
  const fleet::RouterStats pre_load = router.stats();
  fleet::RouterTarget target(router);
  fleet::LoadSpec spec;
  spec.mode = fleet::LoadSpec::Mode::kClosed;
  spec.total = smoke ? 20000 : 1000000;
  spec.clients = 4;
  spec.seed = 11;
  spec.mix.push_back({kTrustedTenant, 1.0});
  spec.mix.push_back({kSuspectTenant, 0.5});
  spec.mix.push_back({kHostileTenant, 0.1});
  spec.mix.push_back({kBulkTenant, 98.4});
  const fleet::LoadReport load =
      fleet::run_load(target, bundle.test.images, spec);
  const fleet::RouterStats post_load = router.stats();
  std::printf("load: offered %lld (%.0f rps) | completed %lld (%.0f rps) | "
              "quota-rejected %lld | shed %lld | errors %lld | p50 %.0fus "
              "p99 %.0fus\n",
              static_cast<long long>(load.offered), load.offered_rps,
              static_cast<long long>(load.completed), load.throughput_rps,
              static_cast<long long>(load.quota_rejected),
              static_cast<long long>(load.shed),
              static_cast<long long>(load.errors), load.p50_us, load.p99_us);
  for (std::size_t g = 0; g < post_load.groups.size(); ++g) {
    const std::int64_t done = post_load.groups[g].completed -
                              pre_load.groups[g].completed;
    std::printf("  group %-8s completed %lld (%.0f rps)\n",
                post_load.groups[g].name.c_str(),
                static_cast<long long>(done),
                load.wall_s > 0 ? static_cast<double>(done) / load.wall_s
                                : 0.0);
  }

  // ---- C. zero-alloc steady state: warm each routing path, then a fixed
  // window of requests must stay off the heap. The budget tenant's bucket
  // (burst 3, no refill) is empty by now, so its window measures the
  // quota-reject path.
  std::int64_t alloc_route = 0;
  std::int64_t alloc_quota = 0;
  std::int64_t alloc_ensemble = 0;
  {
    const Tensor x = nn::slice_batch(bundle.test.images, 0, 1);
    fleet::FleetResult fr;
    const auto window = [&](std::uint64_t tenant) {
      for (int i = 0; i < 5; ++i)
        router.infer(tenant, x, serve::RequestOptions{}, fr);
      const std::int64_t before = g_allocs.load();
      for (int i = 0; i < 20; ++i)
        router.infer(tenant, x, serve::RequestOptions{}, fr);
      return g_allocs.load() - before;
    };
    alloc_route = window(kTrustedTenant);
    alloc_quota = window(kBudgetTenant);
    alloc_ensemble = window(kHostileTenant);
  }
  std::printf("steady-state allocs: trusted %lld | quota-reject %lld | "
              "ensemble %lld\n",
              static_cast<long long>(alloc_route),
              static_cast<long long>(alloc_quota),
              static_cast<long long>(alloc_ensemble));

  // ---- D. TCP loopback: the same router behind a fleet::Frontend, driven
  // over the binary wire protocol by the shared loadgen.
  fleet::LoadReport tcp;
  fleet::FrontendStats fes;
  {
    fleet::FrontendConfig fc;
    fc.port = 0;
    fc.executors = 2;
    fleet::Frontend fe(router, fc);
    fleet::WireTarget wire("127.0.0.1", fe.port(),
                           4 + 4 * 16 * 16 + 1024);
    fleet::LoadSpec tspec;
    tspec.mode = fleet::LoadSpec::Mode::kClosed;
    tspec.total = smoke ? 300 : 2000;
    tspec.clients = 3;
    tspec.seed = 13;
    tspec.mix.push_back({kTrustedTenant, 2.0});
    tspec.mix.push_back({kSuspectTenant, 1.0});
    tspec.mix.push_back({kHostileTenant, 0.2});
    tcp = fleet::run_load(wire, bundle.test.images, tspec);
    fe.stop();
    fes = fe.stats();
  }
  router.stop();
  std::printf("tcp: offered %lld | completed %lld | errors %lld | malformed "
              "%lld | %.0f rps | p50 %.0fus p99 %.0fus\n",
              static_cast<long long>(tcp.offered),
              static_cast<long long>(tcp.completed),
              static_cast<long long>(tcp.errors),
              static_cast<long long>(fes.malformed), tcp.throughput_rps,
              tcp.p50_us, tcp.p99_us);

  // ---- E. chaos: a fresh supervised fleet with weight bit-flips armed on
  // one replica of the two-replica hardened group. Suspect traffic lands on
  // that group; the faulted replica must be quarantined and respawned with
  // zero client-visible errors while its sibling keeps serving.
  ChaosControl ctl;
  ctl.inject = [](snn::SpikingClassifier& m) {
    util::Rng frng(123);
    auto params = m.parameters();
    faults::inject_weight_bitflips(params, 1e-3, frng);
  };
  std::int64_t chaos_errors = 0;
  std::int64_t chaos_total = smoke ? 60 : 200;
  fleet::GroupStats chaos_group;
  {
    fleet::RouterConfig rc = fleet_config(cells);
    fleet::GroupConfig& hardened = rc.groups.back();
    hardened.replicas = 2;
    hardened.chaos_per_replica.push_back(make_hook(ctl));
    hardened.chaos_per_replica.push_back(serve::ChaosHook{});
    fleet::Router chaos_router(rc);
    const std::int64_t trigger = chaos_total * 15 / 100;
    const std::int64_t n = bundle.test.images.dim(0);
    fleet::FleetResult fr;
    for (std::int64_t i = 0; i < chaos_total; ++i) {
      if (i == trigger) ctl.enabled.store(true, std::memory_order_relaxed);
      const std::int64_t idx = i % n;
      const Tensor x = nn::slice_batch(bundle.test.images, idx, idx + 1);
      if (!chaos_router.infer(kSuspectTenant, x, serve::RequestOptions{},
                              fr))
        ++chaos_errors;
    }
    const fleet::RouterStats cs = chaos_router.stats();
    chaos_group = cs.groups.back();
    chaos_router.stop();
  }
  std::printf("chaos: %lld requests on 2-replica hardened group | "
              "quarantines %lld | respawns %lld | retries %lld | "
              "client errors %lld\n",
              static_cast<long long>(chaos_total),
              static_cast<long long>(chaos_group.quarantines),
              static_cast<long long>(chaos_group.respawns),
              static_cast<long long>(chaos_group.retries),
              static_cast<long long>(chaos_errors));

  // ---- gates.
  const bool gate_ensemble = !acc_gates_active ||
                             ensemble_acc > best_single;
  const bool gate_volume = load.offered >= spec.total &&
                           load.offered >= (smoke ? 20000 : 1000000);
  const bool gate_quota = load.quota_rejected >= 1;
  const bool gate_load_errors = load.errors == 0;
  const bool gate_alloc =
      alloc_route == 0 && alloc_quota == 0 && alloc_ensemble == 0;
  const bool gate_chaos = chaos_group.quarantines >= 1 &&
                          chaos_group.respawns >= 1 && chaos_errors == 0;
  const bool gate_wire = tcp.completed == tcp.offered && tcp.errors == 0 &&
                         fes.malformed == 0;

  // ---- JSON.
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_fleet: cannot open %s for writing\n",
                 out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fleet\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"threads\": %zu,\n", util::ThreadPool::global().size());
  std::fprintf(f, "  \"data\": \"%s\",\n", bundle.source());
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t g = 0; g < cells.size(); ++g)
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"role\": \"%s\", \"v_th\": %.2f, "
                 "\"time_steps\": %lld, \"clean_accuracy\": %.4f}%s\n",
                 cells[g].plan.name, to_string(cells[g].plan.role),
                 cells[g].plan.v_th,
                 static_cast<long long>(cells[g].plan.time_steps),
                 cells[g].clean_accuracy,
                 g + 1 < cells.size() ? "," : "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"adversarial\": {\"epsilon\": %.2f, \"pgd_steps\": %lld, "
               "\"samples\": %lld,\n",
               eps, static_cast<long long>(pgd_steps),
               static_cast<long long>(adv_n));
  std::fprintf(f, "    \"transfer_matrix\": [\n");
  for (std::size_t g = 0; g < cells.size(); ++g)
    std::fprintf(f, "      [%.4f, %.4f, %.4f]%s\n", matrix[g][0],
                 matrix[g][1], matrix[g][2],
                 g + 1 < cells.size() ? "," : "");
  std::fprintf(f, "    ],\n");
  std::fprintf(f,
               "    \"single_cell\": [%.4f, %.4f, %.4f],\n"
               "    \"best_single\": %.4f, \"ensemble\": %.4f, "
               "\"ensemble_ties\": %lld},\n",
               single_cell[0], single_cell[1], single_cell[2], best_single,
               ensemble_acc, static_cast<long long>(ens_ties));
  std::fprintf(f,
               "  \"load\": {\"offered\": %lld, \"completed\": %lld, "
               "\"shed\": %lld, \"quota_rejected\": %lld, \"errors\": %lld, "
               "\"truncated\": %lld, \"wall_s\": %.3f, \"offered_rps\": "
               "%.1f, \"throughput_rps\": %.1f, \"p50_us\": %.1f, "
               "\"p95_us\": %.1f, \"p99_us\": %.1f,\n",
               static_cast<long long>(load.offered),
               static_cast<long long>(load.completed),
               static_cast<long long>(load.shed),
               static_cast<long long>(load.quota_rejected),
               static_cast<long long>(load.errors),
               static_cast<long long>(load.truncated), load.wall_s,
               load.offered_rps, load.throughput_rps, load.p50_us,
               load.p95_us, load.p99_us);
  std::fprintf(f, "    \"groups\": [\n");
  for (std::size_t g = 0; g < post_load.groups.size(); ++g) {
    const fleet::GroupStats& gs = post_load.groups[g];
    const std::int64_t done =
        gs.completed - pre_load.groups[g].completed;
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"completed\": %lld, \"shed\": "
                 "%lld, \"truncated\": %lld, \"rps\": %.1f}%s\n",
                 gs.name.c_str(), static_cast<long long>(done),
                 static_cast<long long>(gs.shed),
                 static_cast<long long>(gs.truncated),
                 load.wall_s > 0
                     ? static_cast<double>(done) / load.wall_s
                     : 0.0,
                 g + 1 < post_load.groups.size() ? "," : "");
  }
  std::fprintf(f, "    ]},\n");
  std::fprintf(f,
               "  \"steady_state_allocs\": {\"trusted\": %lld, "
               "\"quota_reject\": %lld, \"ensemble\": %lld},\n",
               static_cast<long long>(alloc_route),
               static_cast<long long>(alloc_quota),
               static_cast<long long>(alloc_ensemble));
  std::fprintf(f,
               "  \"tcp\": {\"offered\": %lld, \"completed\": %lld, "
               "\"errors\": %lld, \"malformed\": %lld, \"shed\": %lld, "
               "\"throughput_rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": "
               "%.1f},\n",
               static_cast<long long>(tcp.offered),
               static_cast<long long>(tcp.completed),
               static_cast<long long>(tcp.errors),
               static_cast<long long>(fes.malformed),
               static_cast<long long>(fes.shed), tcp.throughput_rps,
               tcp.p50_us, tcp.p99_us);
  std::fprintf(f,
               "  \"chaos\": {\"group\": \"%s\", \"replicas\": %lld, "
               "\"requests\": %lld, \"quarantines\": %lld, \"respawns\": "
               "%lld, \"retries\": %lld, \"client_errors\": %lld},\n",
               chaos_group.name.c_str(),
               static_cast<long long>(chaos_group.replicas),
               static_cast<long long>(chaos_total),
               static_cast<long long>(chaos_group.quarantines),
               static_cast<long long>(chaos_group.respawns),
               static_cast<long long>(chaos_group.retries),
               static_cast<long long>(chaos_errors));
  std::fprintf(f,
               "  \"gates\": {\"ensemble_beats_best_single\": %s, "
               "\"load_volume\": %s, \"quota_enforced\": %s, "
               "\"zero_load_errors\": %s, \"zero_alloc\": %s, "
               "\"chaos_recovery\": %s, \"wire_clean\": %s}\n",
               gate_ensemble ? "true" : "false",
               gate_volume ? "true" : "false",
               gate_quota ? "true" : "false",
               gate_load_errors ? "true" : "false",
               gate_alloc ? "true" : "false",
               gate_chaos ? "true" : "false",
               gate_wire ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ok = false;
  };
  if (!gate_ensemble)
    fail("ensemble vote did not beat the best single cell under mixed "
         "white-box PGD");
  if (!gate_volume) fail("offered request volume below target");
  if (!gate_quota) fail("token-bucket quota never rejected a request");
  if (!gate_load_errors) fail("mixed-tenant load saw client-visible errors");
  if (!gate_alloc)
    fail("a steady-state routing path allocated (expected 0)");
  if (!gate_chaos)
    fail("chaos-armed replica was not quarantined+respawned error-free");
  if (!gate_wire) fail("TCP loopback run was not clean");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-threaded like the other serving benches: inference runs inline
  // on submitter/executor threads, and the box the numbers are recorded on
  // has one core anyway.
  setenv("SNNSEC_THREADS", "1", /*overwrite=*/0);
  return run(argc, argv);
}
