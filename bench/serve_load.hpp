// Shared load-generation helpers for the serving benches (bench_serve,
// bench_chaos): closed/open-loop drivers, latency percentiles, and the
// accuracy-vs-truncation curve point. The client loops themselves live in
// the reusable fleet loadgen engine (src/fleet/loadgen.hpp, also behind
// the snnsec_loadgen CLI); this header keeps the bench-facing result
// shapes and JSON emission so each bench stays a single self-contained
// binary with its own operator-new hook.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "data/provider.hpp"
#include "fleet/loadgen.hpp"
#include "nn/metrics.hpp"
#include "serve/server.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::bench {

using Clock = std::chrono::steady_clock;

inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LoadResult {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t truncated = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
};

struct CurvePoint {
  std::int64_t max_steps = 0;
  double accuracy = 0.0;
  double mean_latency_us = 0.0;
};

inline void finish_percentiles(LoadResult& r, std::vector<double>& latencies) {
  std::sort(latencies.begin(), latencies.end());
  r.p50_us = percentile(latencies, 0.50);
  r.p95_us = percentile(latencies, 0.95);
  r.p99_us = percentile(latencies, 0.99);
}

inline LoadResult from_report(const fleet::LoadReport& rep) {
  LoadResult out;
  out.offered = rep.offered;
  out.completed = rep.completed;
  // Bench semantics: anything not completed was shed, whichever admission
  // layer said no.
  out.shed = rep.offered - rep.completed;
  out.truncated = rep.truncated;
  out.wall_s = rep.wall_s;
  out.throughput_rps = rep.throughput_rps;
  out.p50_us = rep.p50_us;
  out.p95_us = rep.p95_us;
  out.p99_us = rep.p99_us;
  out.mean_batch = rep.mean_batch;
  return out;
}

/// Closed loop: `clients` threads each fire `per_client` back-to-back
/// requests cycling through the test images.
inline LoadResult closed_loop(serve::Server& server,
                              const tensor::Tensor& images,
                              std::int64_t clients, std::int64_t per_client) {
  fleet::ServerTarget target(server);
  fleet::LoadSpec spec;
  spec.mode = fleet::LoadSpec::Mode::kClosed;
  spec.total = clients * per_client;
  spec.clients = clients;
  return from_report(fleet::run_load(target, images, spec));
}

/// Open loop: arrivals paced at `rate_rps` across a submitter pool, each
/// request carrying `deadline_us`. When the offered rate exceeds capacity
/// the submitters saturate and deadlines start truncating the time window.
inline LoadResult open_loop(serve::Server& server,
                            const tensor::Tensor& images, std::int64_t total,
                            double rate_rps, std::int64_t deadline_us,
                            std::int64_t submitters) {
  fleet::ServerTarget target(server);
  fleet::LoadSpec spec;
  spec.mode = fleet::LoadSpec::Mode::kOpen;
  spec.total = total;
  spec.clients = submitters;
  spec.rate_rps = rate_rps;
  spec.options.deadline_us = deadline_us;
  return from_report(fleet::run_load(target, images, spec));
}

/// Serve the whole test split sequentially at a fixed step budget.
inline CurvePoint curve_point(serve::Server& server,
                              const data::DataBundle& bundle,
                              std::int64_t max_steps) {
  CurvePoint p;
  p.max_steps = max_steps;
  serve::RequestOptions opt;
  opt.max_steps = max_steps;
  serve::InferResult r;
  const std::int64_t n = bundle.test.images.dim(0);
  std::int64_t correct = 0;
  std::int64_t latency_sum = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const tensor::Tensor x = nn::slice_batch(bundle.test.images, i, i + 1);
    if (!server.infer(x, opt, r)) continue;
    if (r.pred == bundle.test.labels[static_cast<std::size_t>(i)]) ++correct;
    latency_sum += r.latency_us;
  }
  p.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  p.mean_latency_us =
      static_cast<double>(latency_sum) / static_cast<double>(n);
  return p;
}

inline void write_load(std::FILE* f, const char* key, const LoadResult& r,
                       const char* extra) {
  std::fprintf(f,
               "  \"%s\": {\"offered\": %lld, \"completed\": %lld, "
               "\"shed\": %lld, \"truncated\": %lld, \"wall_s\": %.3f, "
               "\"throughput_rps\": %.1f, \"p50_us\": %.0f, \"p95_us\": "
               "%.0f, \"p99_us\": %.0f, \"mean_batch\": %.2f%s},\n",
               key, static_cast<long long>(r.offered),
               static_cast<long long>(r.completed),
               static_cast<long long>(r.shed),
               static_cast<long long>(r.truncated), r.wall_s,
               r.throughput_rps, r.p50_us, r.p95_us, r.p99_us, r.mean_batch,
               extra);
}

}  // namespace snnsec::bench
