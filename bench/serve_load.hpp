// Shared load-generation helpers for the serving benches (bench_serve,
// bench_chaos): closed/open-loop drivers, latency percentiles, and the
// accuracy-vs-truncation curve point. Header-only so each bench stays a
// single self-contained binary with its own operator-new hook.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "serve/server.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::bench {

using Clock = std::chrono::steady_clock;

inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LoadResult {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t truncated = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
};

struct CurvePoint {
  std::int64_t max_steps = 0;
  double accuracy = 0.0;
  double mean_latency_us = 0.0;
};

inline void finish_percentiles(LoadResult& r, std::vector<double>& latencies) {
  std::sort(latencies.begin(), latencies.end());
  r.p50_us = percentile(latencies, 0.50);
  r.p95_us = percentile(latencies, 0.95);
  r.p99_us = percentile(latencies, 0.99);
}

/// Closed loop: `clients` threads each fire `per_client` back-to-back
/// requests cycling through the test images.
inline LoadResult closed_loop(serve::Server& server,
                              const tensor::Tensor& images,
                              std::int64_t clients, std::int64_t per_client) {
  LoadResult out;
  out.offered = clients * per_client;
  const std::int64_t n_images = images.dim(0);
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::int64_t> batch_sum(static_cast<std::size_t>(clients), 0);
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> truncated{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  for (std::int64_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      auto& samples = lat[static_cast<std::size_t>(c)];
      samples.reserve(static_cast<std::size_t>(per_client));
      serve::InferResult r;
      for (std::int64_t i = 0; i < per_client; ++i) {
        const std::int64_t idx = (c * per_client + i) % n_images;
        const tensor::Tensor x = nn::slice_batch(images, idx, idx + 1);
        if (!server.infer(x, serve::RequestOptions{}, r)) continue;
        completed.fetch_add(1, std::memory_order_relaxed);
        if (r.truncated) truncated.fetch_add(1, std::memory_order_relaxed);
        samples.push_back(static_cast<double>(r.latency_us));
        batch_sum[static_cast<std::size_t>(c)] += r.batch_size;
      }
    });
  }
  for (auto& t : pool) t.join();
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  out.completed = completed.load();
  out.truncated = truncated.load();
  std::vector<double> all;
  std::int64_t batches = 0;
  for (std::int64_t c = 0; c < clients; ++c) {
    const auto& samples = lat[static_cast<std::size_t>(c)];
    all.insert(all.end(), samples.begin(), samples.end());
    batches += batch_sum[static_cast<std::size_t>(c)];
  }
  out.shed = out.offered - out.completed;
  out.throughput_rps =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0.0;
  out.mean_batch = out.completed > 0 ? static_cast<double>(batches) /
                                           static_cast<double>(out.completed)
                                     : 0.0;
  finish_percentiles(out, all);
  return out;
}

/// Open loop: arrivals paced at `rate_rps` across a submitter pool, each
/// request carrying `deadline_us`. When the offered rate exceeds capacity
/// the submitters saturate and deadlines start truncating the time window.
inline LoadResult open_loop(serve::Server& server,
                            const tensor::Tensor& images, std::int64_t total,
                            double rate_rps, std::int64_t deadline_us,
                            std::int64_t submitters) {
  LoadResult out;
  out.offered = total;
  const std::int64_t n_images = images.dim(0);
  const double interval_us = 1e6 / std::max(rate_rps, 1.0);
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(submitters));
  std::atomic<std::int64_t> next_tick{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> truncated{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  for (std::int64_t c = 0; c < submitters; ++c) {
    pool.emplace_back([&, c] {
      auto& samples = lat[static_cast<std::size_t>(c)];
      samples.reserve(static_cast<std::size_t>(total));
      serve::InferResult r;
      serve::RequestOptions opt;
      opt.deadline_us = deadline_us;
      for (;;) {
        const std::int64_t tick =
            next_tick.fetch_add(1, std::memory_order_relaxed);
        if (tick >= total) break;
        const auto due =
            t0 + std::chrono::microseconds(static_cast<std::int64_t>(
                     interval_us * static_cast<double>(tick)));
        std::this_thread::sleep_until(due);
        const tensor::Tensor x =
            nn::slice_batch(images, tick % n_images, tick % n_images + 1);
        if (!server.infer(x, opt, r)) {
          shed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        if (r.truncated) truncated.fetch_add(1, std::memory_order_relaxed);
        samples.push_back(static_cast<double>(r.latency_us));
      }
    });
  }
  for (auto& t : pool) t.join();
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  out.completed = completed.load();
  out.shed = shed.load();
  out.truncated = truncated.load();
  out.throughput_rps =
      out.wall_s > 0 ? static_cast<double>(out.completed) / out.wall_s : 0.0;
  std::vector<double> all;
  for (auto& samples : lat)
    all.insert(all.end(), samples.begin(), samples.end());
  finish_percentiles(out, all);
  return out;
}

/// Serve the whole test split sequentially at a fixed step budget.
inline CurvePoint curve_point(serve::Server& server,
                              const data::DataBundle& bundle,
                              std::int64_t max_steps) {
  CurvePoint p;
  p.max_steps = max_steps;
  serve::RequestOptions opt;
  opt.max_steps = max_steps;
  serve::InferResult r;
  const std::int64_t n = bundle.test.images.dim(0);
  std::int64_t correct = 0;
  std::int64_t latency_sum = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const tensor::Tensor x = nn::slice_batch(bundle.test.images, i, i + 1);
    if (!server.infer(x, opt, r)) continue;
    if (r.pred == bundle.test.labels[static_cast<std::size_t>(i)]) ++correct;
    latency_sum += r.latency_us;
  }
  p.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  p.mean_latency_us =
      static_cast<double>(latency_sum) / static_cast<double>(n);
  return p;
}

inline void write_load(std::FILE* f, const char* key, const LoadResult& r,
                       const char* extra) {
  std::fprintf(f,
               "  \"%s\": {\"offered\": %lld, \"completed\": %lld, "
               "\"shed\": %lld, \"truncated\": %lld, \"wall_s\": %.3f, "
               "\"throughput_rps\": %.1f, \"p50_us\": %.0f, \"p95_us\": "
               "%.0f, \"p99_us\": %.0f, \"mean_batch\": %.2f%s},\n",
               key, static_cast<long long>(r.offered),
               static_cast<long long>(r.completed),
               static_cast<long long>(r.shed),
               static_cast<long long>(r.truncated), r.wall_s,
               r.throughput_rps, r.p50_us, r.p95_us, r.p99_us, r.mean_batch,
               extra);
}

}  // namespace snnsec::bench
