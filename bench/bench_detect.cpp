// bench_detect: ROC + overhead harness for the online adversarial detector.
//
// Trains a small spiking LeNet, calibrates a clean-traffic ActivityEnvelope
// on the training split (the same AnytimeRunner + SketchAccumulator
// pipeline the serve workers run), then replays clean test traffic and
// PGD / FGSM / SimBA adversarial traffic through a detector-armed Server
// and measures:
//
//   separation   per-attack AUC (Mann-Whitney) of the anomaly score between
//                clean and adversarial requests, plus flag rates at the
//                serve-path default threshold
//   overhead     mean/p99 request latency with the detector on vs off on
//                identical clean traffic — the telemetry tax
//   zero-alloc   operator-new hook asserts the warm, sketch-enabled request
//                path still performs zero heap allocations
//
// Emits BENCH_detect.json; exits non-zero when PGD AUC drops below 0.90
// (the detector's reason to exist) or the steady state allocates.
//
// Attack strengths use the quick-axis calibration (quick ε ≈ paper ε / 10,
// see EXPERIMENTS.md): ε = 0.1 here corresponds to the paper's ε = 1.0 on
// MNIST.
//
// Usage: bench_detect [--smoke] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "attacks/fgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/simba.hpp"
#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "obs/envelope.hpp"
#include "obs/sketch.hpp"
#include "serve/server.hpp"
#include "snn/anytime.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/thread_pool.hpp"

// ---- allocation-counting hook ----------------------------------------------
// Same device as bench_serve: global new/delete replaced for this binary
// only, so "zero allocations with the sketch enabled" is a measured fact.
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace snnsec;
using tensor::Tensor;

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Mann-Whitney AUC: P(score_pos > score_neg) + 0.5 * P(tie). O(n*m) is
/// fine at bench sizes.
double mann_whitney_auc(const std::vector<double>& neg,
                        const std::vector<double>& pos) {
  if (neg.empty() || pos.empty()) return 0.5;
  double wins = 0.0;
  for (double p : pos)
    for (double n : neg) wins += p > n ? 1.0 : (p == n ? 0.5 : 0.0);
  return wins /
         (static_cast<double>(neg.size()) * static_cast<double>(pos.size()));
}

struct Scored {
  std::vector<double> scores;
  std::vector<double> latency_us;
  std::int64_t flagged = 0;
  std::int64_t mispredicted = 0;  ///< pred != label (attack success on adv)
};

/// Serve `x` (one request per row) and collect anomaly scores + latencies.
Scored score_traffic(serve::Server& server, const Tensor& x,
                     const std::vector<std::int64_t>& labels) {
  Scored out;
  const std::int64_t n = x.dim(0);
  serve::InferResult r;
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor img = nn::slice_batch(x, i, i + 1);
    server.infer(img, serve::RequestOptions{}, r);
    out.scores.push_back(r.anomaly_score);
    out.latency_us.push_back(static_cast<double>(r.latency_us));
    if (r.flagged) ++out.flagged;
    if (r.pred != labels[static_cast<std::size_t>(i)]) ++out.mispredicted;
  }
  return out;
}

struct AttackReport {
  std::string name;
  double epsilon = 0.0;
  double auc = 0.5;
  double mean_score = 0.0;
  double flag_rate = 0.0;
  double attack_success = 0.0;  ///< misprediction rate on adversarial input
};

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_detect.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke" || arg == "--quick") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_detect [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  // ---- model: train small, save, serve through the validated-load path.
  data::DataSpec dspec;
  dspec.train_n = smoke ? 600 : 800;
  dspec.test_n = smoke ? 40 : 120;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);

  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  snn::SnnConfig cfg;
  cfg.v_th = 1.0;
  // T=16 even in smoke: T=10 trains to chance at this budget (the paper's
  // learnability cliff), and an untrained victim makes "adversarial"
  // traffic statistically indistinguishable from clean noise.
  cfg.time_steps = 16;
  util::Rng rng(42);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  nn::TrainConfig tcfg;
  tcfg.epochs = smoke ? 4 : 4;
  tcfg.lr = 4e-3;
  nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);
  const double clean_acc =
      nn::accuracy(*model, bundle.test.images, bundle.test.labels);
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "snnsec_bench_detect.snnm")
          .string();
  snn::save_spiking_lenet(ckpt, *model, arch, cfg);
  std::printf("model: T=%lld vth=%.1f | data %s | clean accuracy %.1f%%\n",
              static_cast<long long>(cfg.time_steps), cfg.v_th,
              bundle.source(), clean_acc * 100);

  // ---- adversarial traffic (quick ε = paper ε / 10) on the live model.
  attack::AttackBudget budget;
  budget.epsilon = 0.1;
  const std::int64_t n_adv =
      std::min<std::int64_t>(smoke ? 30 : 80, bundle.test.images.dim(0));
  const Tensor clean_x = nn::slice_batch(bundle.test.images, 0, n_adv);
  const std::vector<std::int64_t> adv_labels(
      bundle.test.labels.begin(), bundle.test.labels.begin() + n_adv);

  attack::PgdConfig pcfg;
  pcfg.steps = smoke ? 10 : 40;
  attack::Pgd pgd(pcfg);
  attack::Fgsm fgsm;
  attack::SimbaConfig simba_cfg;
  simba_cfg.max_queries = smoke ? 300 : 1000;
  attack::Simba simba(simba_cfg);

  struct AdvSet {
    const char* name;
    Tensor x;
  };
  std::vector<AdvSet> adv_sets;
  std::printf("generating adversarial traffic (eps=%.2f, %lld samples)\n",
              budget.epsilon, static_cast<long long>(n_adv));
  adv_sets.push_back({"PGD", pgd.perturb(*model, clean_x, adv_labels,
                                         budget)});
  adv_sets.push_back({"FGSM", fgsm.perturb(*model, clean_x, adv_labels,
                                           budget)});
  adv_sets.push_back({"SimBA", simba.perturb(*model, clean_x, adv_labels,
                                             budget)});
  model.reset();

  // ---- calibrate the envelope on clean training traffic.
  const auto artifact = serve::ModelCache::global().acquire(ckpt);
  auto envelope = std::make_shared<obs::ActivityEnvelope>();
  {
    const auto replica = artifact->make_replica();
    snn::AnytimeRunner runner(*replica);
    obs::SketchAccumulator acc;
    acc.configure(runner.sketch_layers());
    runner.set_sketch(&acc);
    const std::int64_t n_cal =
        std::min<std::int64_t>(smoke ? 240 : 400, bundle.train.images.dim(0));
    std::vector<obs::ActivitySketch> sketches(
        static_cast<std::size_t>(n_cal));
    for (std::int64_t i = 0; i < n_cal; ++i) {
      runner.run(nn::slice_batch(bundle.train.images, i, i + 1));
      acc.finalize(0, sketches[static_cast<std::size_t>(i)]);
    }
    envelope->fit(sketches, runner.sketch_layers(), acc.buckets(),
                  artifact->config_hash());
    std::printf("envelope: %s\n", envelope->summary().c_str());
  }

  // ---- detector-armed server (inline mode: comparable numbers).
  serve::ServerConfig scfg;
  scfg.model_path = ckpt;
  scfg.workers = 0;
  scfg.batcher.max_batch = 8;
  scfg.batcher.max_delay_us = 200;
  scfg.batcher.capacity = 64;
  scfg.envelope = envelope;
  serve::Server server(scfg);
  const double threshold = scfg.flag_threshold;

  const std::vector<std::int64_t> clean_labels(
      bundle.test.labels.begin(), bundle.test.labels.begin() + n_adv);
  const Scored clean = score_traffic(server, clean_x, clean_labels);
  std::printf("clean: mean score %.2f | flag rate %.1f%% (threshold %.1f)\n",
              mean(clean.scores),
              100.0 * static_cast<double>(clean.flagged) /
                  static_cast<double>(n_adv),
              threshold);

  std::vector<AttackReport> reports;
  for (const AdvSet& a : adv_sets) {
    const Scored adv = score_traffic(server, a.x, adv_labels);
    AttackReport rep;
    rep.name = a.name;
    rep.epsilon = budget.epsilon;
    rep.auc = mann_whitney_auc(clean.scores, adv.scores);
    rep.mean_score = mean(adv.scores);
    rep.flag_rate = static_cast<double>(adv.flagged) /
                    static_cast<double>(n_adv);
    rep.attack_success = static_cast<double>(adv.mispredicted) /
                         static_cast<double>(n_adv);
    reports.push_back(rep);
    std::printf("%-6s eps=%.2f: AUC %.3f | mean score %.2f | flagged "
                "%.1f%% | attack success %.1f%%\n",
                rep.name.c_str(), rep.epsilon, rep.auc, rep.mean_score,
                100 * rep.flag_rate, 100 * rep.attack_success);
  }

  // ---- detector overhead: identical clean traffic, detector off.
  serve::ServerConfig offcfg = scfg;
  offcfg.envelope = nullptr;
  serve::Server server_off(offcfg);
  const Scored off = score_traffic(server_off, clean_x, clean_labels);
  const double on_mean = mean(clean.latency_us);
  const double off_mean = mean(off.latency_us);
  const double on_p99 = percentile(clean.latency_us, 0.99);
  const double off_p99 = percentile(off.latency_us, 0.99);
  const double overhead_pct =
      off_mean > 0 ? 100.0 * (on_mean - off_mean) / off_mean : 0.0;
  std::printf("overhead: mean %.0fus (on) vs %.0fus (off) = %+.1f%% | p99 "
              "%.0fus vs %.0fus\n",
              on_mean, off_mean, overhead_pct, on_p99, off_p99);

  // ---- zero-alloc steady state with the sketch enabled.
  std::int64_t steady_allocs = 0;
  {
    const Tensor x = nn::slice_batch(bundle.test.images, 0, 1);
    serve::InferResult r;
    for (int i = 0; i < 5; ++i) server.infer(x, serve::RequestOptions{}, r);
    const std::int64_t before = g_allocs.load();
    for (int i = 0; i < 20; ++i) server.infer(x, serve::RequestOptions{}, r);
    steady_allocs = g_allocs.load() - before;
    std::printf("steady-state allocs over 20 detected requests: %lld\n",
                static_cast<long long>(steady_allocs));
  }
  server.stop();
  server_off.stop();
  const serve::ServerStats stats = server.stats();

  // ---- JSON.
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_detect: cannot open %s for writing\n",
                 out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"detect\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"threads\": %zu,\n", util::ThreadPool::global().size());
  std::fprintf(f,
               "  \"model\": {\"time_steps\": %lld, \"v_th\": %.2f, "
               "\"data\": \"%s\", \"clean_accuracy\": %.4f},\n",
               static_cast<long long>(cfg.time_steps), cfg.v_th,
               bundle.source(), clean_acc);
  std::fprintf(f,
               "  \"envelope\": {\"samples\": %lld, \"buckets\": %d, "
               "\"flag_threshold\": %.2f},\n",
               static_cast<long long>(envelope->sample_count()),
               envelope->buckets(), threshold);
  std::fprintf(f,
               "  \"clean\": {\"requests\": %lld, \"mean_score\": %.3f, "
               "\"flag_rate\": %.4f},\n",
               static_cast<long long>(n_adv), mean(clean.scores),
               static_cast<double>(clean.flagged) /
                   static_cast<double>(n_adv));
  std::fprintf(f, "  \"attacks\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const AttackReport& r = reports[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"epsilon\": %.2f, \"auc\": %.4f, "
                 "\"mean_score\": %.3f, \"flag_rate\": %.4f, "
                 "\"attack_success\": %.4f}%s\n",
                 r.name.c_str(), r.epsilon, r.auc, r.mean_score, r.flag_rate,
                 r.attack_success, i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"overhead\": {\"mean_on_us\": %.0f, \"mean_off_us\": "
               "%.0f, \"p99_on_us\": %.0f, \"p99_off_us\": %.0f, "
               "\"overhead_pct\": %.2f},\n",
               on_mean, off_mean, on_p99, off_p99, overhead_pct);
  std::fprintf(f, "  \"server\": {\"completed\": %lld, \"flagged\": %lld, "
               "\"errors\": %lld},\n",
               static_cast<long long>(stats.completed),
               static_cast<long long>(stats.flagged),
               static_cast<long long>(stats.errors));
  std::fprintf(f, "  \"steady_state_allocs\": %lld\n",
               static_cast<long long>(steady_allocs));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  int rc = 0;
  if (steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: detected request path allocated %lld times in "
                 "steady state (expected 0)\n",
                 static_cast<long long>(steady_allocs));
    rc = 1;
  }
  if (stats.errors != 0) {
    std::fprintf(stderr, "FAIL: %lld requests errored\n",
                 static_cast<long long>(stats.errors));
    rc = 1;
  }
  for (const AttackReport& r : reports) {
    if (r.name == "PGD" && r.auc < 0.90) {
      std::fprintf(stderr,
                   "FAIL: PGD AUC %.3f below the 0.90 acceptance floor\n",
                   r.auc);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-threaded by default so latency numbers are comparable across
  // machines; export SNNSEC_THREADS before invoking to measure scaling.
  setenv("SNNSEC_THREADS", "1", /*overwrite=*/0);
  return run(argc, argv);
}
