// bench_chaos: fault-injection chaos harness for the supervised serving
// runtime. Emits BENCH_chaos.json so self-healing behaviour is CI-diffable.
//
// Trains the same small spiking LeNet as bench_serve, then:
//
//   overhead      closed-loop load against supervision OFF vs ON servers on
//                 the healthy path; gates the ON/OFF p99 ratio at 1.05 and
//                 asserts the warm ON request path performs zero heap
//                 allocations (operator-new hook)
//   scenarios     for each fault class (weight bit-flips at BER 1e-4, spike
//                 drop 10%, stuck-at-zero 5%, spike jitter 10%, NaN storm in
//                 the readout weights) a chaos hook corrupts the live
//                 replica mid-replay, once, on a supervised and on an
//                 unsupervised server. Records accuracy under fault,
//                 detection latency (requests between injection and
//                 quarantine), quarantines, respawns and retries. Gates:
//                 supervised accuracy within 2% of the no-fault baseline for
//                 the BER/drop scenarios, every quarantine respawned, the
//                 NaN storm recovered via retry, and at least one
//                 unsupervised scenario showing >= 10% accuracy loss.
//   stall         the hook wedges a batch well past the heartbeat timeout;
//                 the watchdog must trip and the replica respawn.
//
// Usage: bench_chaos [--smoke] [--out PATH]
//   --smoke   fewer requests / smaller model / core scenarios only (CI)
//   --out     output path (default BENCH_chaos.json in the CWD)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "data/provider.hpp"
#include "faults/fault.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "serve/server.hpp"
#include "serve_load.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/thread_pool.hpp"

// ---- allocation-counting hook ----------------------------------------------
// Same device as bench_serve: global new/delete replaced for this binary
// only, so "zero allocations in supervised steady state" is a measured fact.
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace snnsec;
using bench::closed_loop;
using bench::LoadResult;
using bench::write_load;
using tensor::Tensor;

/// Shared state between the replay driver and the server's chaos hook.
/// The hook fires on the executing thread at the start of every batch; it
/// injects exactly once, and never onto a replica that has already been
/// respawned (ctx.respawns > 0), so healing is observable.
struct ChaosControl {
  std::atomic<bool> enabled{false};
  std::atomic<bool> injected{false};
  std::function<void(snn::SpikingClassifier&)> inject;
};

serve::ChaosHook make_hook(ChaosControl& ctl) {
  return [&ctl](const serve::ChaosContext& ctx) {
    if (!ctl.enabled.load(std::memory_order_relaxed)) return;
    if (ctx.respawns > 0) return;
    if (ctl.injected.exchange(true)) return;
    ctl.inject(*ctx.model);
  };
}

struct ScenarioOutcome {
  double accuracy = 0.0;
  std::int64_t answered = 0;
  std::int64_t errors = 0;
  /// Requests served between injection and the first quarantine
  /// (0 = caught by the canary right after the faulted batch); -1 = never.
  std::int64_t detect_after = -1;
  serve::ServerStats stats;
};

/// Sequential replay of `total` requests over the test split, enabling the
/// chaos hook at request index `trigger` (-1 = never). Single client +
/// inline server => batches of one, so "requests" and "batches" coincide
/// and detection latency is exact.
ScenarioOutcome replay(serve::Server& server, const data::DataBundle& bundle,
                       ChaosControl* ctl, std::int64_t total,
                       std::int64_t trigger) {
  ScenarioOutcome out;
  const std::int64_t n = bundle.test.images.dim(0);
  std::int64_t correct = 0;
  serve::InferResult r;
  for (std::int64_t i = 0; i < total; ++i) {
    if (ctl && i == trigger)
      ctl->enabled.store(true, std::memory_order_relaxed);
    const std::int64_t idx = i % n;
    const Tensor x = nn::slice_batch(bundle.test.images, idx, idx + 1);
    if (server.infer(x, serve::RequestOptions{}, r)) {
      ++out.answered;
      if (r.pred == bundle.test.labels[static_cast<std::size_t>(idx)])
        ++correct;
    } else {
      ++out.errors;
    }
    if (ctl && out.detect_after < 0 && i >= trigger && trigger >= 0 &&
        server.stats().quarantines > 0)
      out.detect_after = i - trigger;
  }
  out.accuracy = total > 0 ? static_cast<double>(correct) /
                                 static_cast<double>(total)
                           : 0.0;
  out.stats = server.stats();
  return out;
}

struct ScenarioPlan {
  const char* name;
  std::function<void(snn::SpikingClassifier&)> inject;
};

struct ScenarioRow {
  const char* name = nullptr;
  ScenarioOutcome on;   // supervised
  ScenarioOutcome off;  // unsupervised
};

serve::ServerConfig base_config(const std::string& ckpt) {
  serve::ServerConfig scfg;
  scfg.model_path = ckpt;
  scfg.workers = 0;  // inline: deterministic batches of one
  scfg.batcher.max_batch = 8;
  scfg.batcher.max_delay_us = 200;
  scfg.batcher.capacity = 64;
  scfg.allow_faults = true;  // chaos mode: armed spike faults are replayed
  return scfg;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke" || arg == "--quick") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_chaos [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  // ---- model: identical recipe to bench_serve, so the overhead numbers
  // are comparable against BENCH_serve.json.
  data::DataSpec dspec;
  dspec.train_n = smoke ? 200 : 800;
  dspec.test_n = smoke ? 60 : 150;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);

  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  snn::SnnConfig cfg;
  cfg.v_th = 1.0;
  cfg.time_steps = smoke ? 10 : 16;
  util::Rng rng(42);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  nn::TrainConfig tcfg;
  tcfg.epochs = smoke ? 1 : 3;
  tcfg.lr = 4e-3;
  nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);
  const double clean_acc =
      nn::accuracy(*model, bundle.test.images, bundle.test.labels);
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "snnsec_bench_chaos.snnm")
          .string();
  snn::save_spiking_lenet(ckpt, *model, arch, cfg);
  model.reset();
  std::printf("model: T=%lld vth=%.1f | data %s | clean accuracy %.1f%%\n",
              static_cast<long long>(cfg.time_steps), cfg.v_th,
              bundle.source(), clean_acc * 100);

  const std::int64_t total = smoke ? 60 : 200;
  const std::int64_t trigger = std::max<std::int64_t>(4, total * 15 / 100);

  // ---- A. healthy-path overhead: supervision OFF vs ON, identical load.
  const std::int64_t clients = 2;
  const std::int64_t per_client = smoke ? 30 : 100;
  LoadResult off_load;
  LoadResult on_load;
  std::int64_t steady_allocs = 0;
  double p99_ratio = 0.0;
  // One retry of the pair: on a loaded single-core CI box a stray
  // scheduling hiccup can blow a tail percentile in either direction.
  for (int attempt = 0; attempt < 2; ++attempt) {
    {
      serve::Server server(base_config(ckpt));
      off_load = closed_loop(server, bundle.test.images, clients, per_client);
      server.stop();
    }
    {
      serve::ServerConfig scfg = base_config(ckpt);
      scfg.supervisor.enabled = true;
      serve::Server server(scfg);
      on_load = closed_loop(server, bundle.test.images, clients, per_client);
      // Zero-alloc steady state with supervision on: warm, then a
      // fixed-geometry stream (fast canary included) must stay off the heap.
      const Tensor x = nn::slice_batch(bundle.test.images, 0, 1);
      serve::InferResult r;
      for (int i = 0; i < 5; ++i) server.infer(x, serve::RequestOptions{}, r);
      const std::int64_t before = g_allocs.load();
      for (int i = 0; i < 20; ++i)
        server.infer(x, serve::RequestOptions{}, r);
      steady_allocs = g_allocs.load() - before;
      server.stop();
    }
    p99_ratio = off_load.p99_us > 0 ? on_load.p99_us / off_load.p99_us : 0.0;
    if (p99_ratio <= 1.05) break;
  }
  std::printf("overhead: off p50 %.0fus p99 %.0fus | on p50 %.0fus p99 "
              "%.0fus | p99 ratio %.3f | steady allocs %lld\n",
              off_load.p50_us, off_load.p99_us, on_load.p50_us,
              on_load.p99_us, p99_ratio,
              static_cast<long long>(steady_allocs));

  // ---- baseline: same sequential replay, no fault, supervision on.
  double baseline_acc = 0.0;
  {
    serve::ServerConfig scfg = base_config(ckpt);
    scfg.supervisor.enabled = true;
    serve::Server server(scfg);
    baseline_acc = replay(server, bundle, nullptr, total, -1).accuracy;
    server.stop();
  }
  std::printf("baseline replay accuracy (no fault): %.1f%%\n",
              baseline_acc * 100);

  // ---- B. fault scenarios, supervised vs unsupervised.
  std::vector<ScenarioPlan> plans;
  plans.push_back({"weight_ber_1e-4", [](snn::SpikingClassifier& m) {
                     util::Rng frng(123);
                     auto params = m.parameters();
                     faults::inject_weight_bitflips(params, 1e-4, frng);
                   }});
  plans.push_back({"spike_drop_10", [](snn::SpikingClassifier& m) {
                     faults::FaultSpec spec;
                     spec.kind = faults::FaultKind::kSpikeDrop;
                     spec.rate = 0.10;
                     faults::arm_fault(m, spec);
                   }});
  plans.push_back({"nan_storm", [](snn::SpikingClassifier& m) {
                     // Poison the classifier-head bias so the storm is
                     // visible at the logits, not just the hidden state.
                     // +inf rather than NaN: the readout's strictly-greater
                     // running max latches the clean t=0 trace and a NaN
                     // never beats it, whereas +inf reaches the logits —
                     // exactly the non-finite output finalize must catch.
                     auto params = m.parameters();
                     tensor::Tensor& w = params.back()->value;
                     const float inf =
                         std::numeric_limits<float>::infinity();
                     float* d = w.data();
                     const std::int64_t n =
                         std::min<std::int64_t>(w.numel(), 64);
                     for (std::int64_t k = 0; k < n; ++k) d[k] = inf;
                   }});
  if (!smoke) {
    plans.push_back({"stuck_zero_5", [](snn::SpikingClassifier& m) {
                       faults::FaultSpec spec;
                       spec.kind = faults::FaultKind::kStuckAtZero;
                       spec.rate = 0.05;
                       faults::arm_fault(m, spec);
                     }});
    plans.push_back({"spike_jitter_10", [](snn::SpikingClassifier& m) {
                       faults::FaultSpec spec;
                       spec.kind = faults::FaultKind::kSpikeJitter;
                       spec.rate = 0.10;
                       faults::arm_fault(m, spec);
                     }});
  }

  std::vector<ScenarioRow> rows;
  for (const ScenarioPlan& plan : plans) {
    ScenarioRow row;
    row.name = plan.name;
    for (const bool supervised : {true, false}) {
      ChaosControl ctl;
      ctl.inject = plan.inject;
      serve::ServerConfig scfg = base_config(ckpt);
      scfg.supervisor.enabled = supervised;
      scfg.chaos_on_batch = make_hook(ctl);
      serve::Server server(scfg);
      const ScenarioOutcome o = replay(server, bundle, &ctl, total, trigger);
      server.stop();
      (supervised ? row.on : row.off) = o;
    }
    std::printf("%-16s supervised: acc %5.1f%% detect@+%lld q=%lld r=%lld "
                "retries=%lld | unsupervised: acc %5.1f%%\n",
                plan.name, row.on.accuracy * 100,
                static_cast<long long>(row.on.detect_after),
                static_cast<long long>(row.on.stats.quarantines),
                static_cast<long long>(row.on.stats.respawns),
                static_cast<long long>(row.on.stats.retries),
                row.off.accuracy * 100);
    rows.push_back(row);
  }

  // ---- C. stall: wedge one batch past the heartbeat timeout; the
  // watchdog must trip (detection) and the post-batch maintain respawn.
  ScenarioOutcome stall;
  {
    ChaosControl ctl;
    ctl.inject = [](snn::SpikingClassifier&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    };
    serve::ServerConfig scfg = base_config(ckpt);
    scfg.supervisor.enabled = true;
    scfg.supervisor.heartbeat_timeout_ms = 40;
    scfg.chaos_on_batch = make_hook(ctl);
    serve::Server server(scfg);
    stall = replay(server, bundle, &ctl, std::min<std::int64_t>(total, 40),
                   8);
    server.stop();
  }
  std::printf("stall: watchdog trips %lld | quarantines %lld | respawns "
              "%lld | errors %lld\n",
              static_cast<long long>(stall.stats.watchdog_trips),
              static_cast<long long>(stall.stats.quarantines),
              static_cast<long long>(stall.stats.respawns),
              static_cast<long long>(stall.errors));

  // ---- gates. Accuracy-based gates only bind when the model actually
  // trained (full mode): a chance-level smoke model cannot show accuracy
  // loss, but the detection/respawn/retry mechanism gates always hold.
  const bool acc_gates_active = baseline_acc >= 0.30;
  const double acc_slack = 0.02;
  bool gate_overhead = p99_ratio > 0.0 && p99_ratio <= 1.05;
  bool gate_allocs = steady_allocs == 0;
  bool gate_detected = true;    // every supervised scenario quarantined
  bool gate_respawned = true;   // ... and respawned its replica
  bool gate_accuracy = true;    // BER/drop supervised within 2% of baseline
  bool gate_retry = false;      // NaN storm recovered via retry, no errors
  double max_unsup_drop = 0.0;
  for (const ScenarioRow& row : rows) {
    if (row.on.stats.quarantines < 1 || row.on.detect_after < 0)
      gate_detected = false;
    if (row.on.stats.respawns < 1 ||
        row.on.stats.respawns < row.on.stats.quarantines)
      gate_respawned = false;
    const std::string name = row.name;
    if (acc_gates_active &&
        (name == "weight_ber_1e-4" || name == "spike_drop_10")) {
      if (row.on.accuracy < baseline_acc - acc_slack) gate_accuracy = false;
    }
    if (name == "nan_storm" && row.on.stats.retries >= 1 &&
        row.on.errors == 0)
      gate_retry = true;
    max_unsup_drop =
        std::max(max_unsup_drop, baseline_acc - row.off.accuracy);
  }
  const bool gate_unsup_loss = !acc_gates_active || max_unsup_drop >= 0.10;
  const bool gate_stall =
      stall.stats.watchdog_trips >= 1 && stall.stats.respawns >= 1;

  // ---- JSON.
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_chaos: cannot open %s for writing\n",
                 out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"chaos\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"threads\": %zu,\n", util::ThreadPool::global().size());
  std::fprintf(f,
               "  \"model\": {\"time_steps\": %lld, \"v_th\": %.2f, "
               "\"data\": \"%s\", \"clean_accuracy\": %.4f},\n",
               static_cast<long long>(cfg.time_steps), cfg.v_th,
               bundle.source(), clean_acc);
  std::fprintf(f, "  \"baseline_accuracy\": %.4f,\n", baseline_acc);
  write_load(f, "healthy_off", off_load, "");
  write_load(f, "healthy_on", on_load, "");
  std::fprintf(f, "  \"p99_ratio\": %.4f,\n", p99_ratio);
  std::fprintf(f, "  \"steady_state_allocs\": %lld,\n",
               static_cast<long long>(steady_allocs));
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"supervised\": {\"accuracy\": %.4f, "
        "\"detect_after_requests\": %lld, \"quarantines\": %lld, "
        "\"respawns\": %lld, \"retries\": %lld, \"rescues\": %lld, "
        "\"errors\": %lld}, \"unsupervised\": {\"accuracy\": %.4f, "
        "\"errors\": %lld}}%s\n",
        row.name, row.on.accuracy,
        static_cast<long long>(row.on.detect_after),
        static_cast<long long>(row.on.stats.quarantines),
        static_cast<long long>(row.on.stats.respawns),
        static_cast<long long>(row.on.stats.retries),
        static_cast<long long>(row.on.stats.rescues),
        static_cast<long long>(row.on.errors), row.off.accuracy,
        static_cast<long long>(row.off.errors),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"stall\": {\"watchdog_trips\": %lld, \"quarantines\": "
               "%lld, \"respawns\": %lld, \"errors\": %lld},\n",
               static_cast<long long>(stall.stats.watchdog_trips),
               static_cast<long long>(stall.stats.quarantines),
               static_cast<long long>(stall.stats.respawns),
               static_cast<long long>(stall.errors));
  std::fprintf(
      f,
      "  \"gates\": {\"p99_overhead\": %s, \"zero_alloc\": %s, "
      "\"fault_detected\": %s, \"replica_respawned\": %s, "
      "\"supervised_accuracy\": %s, \"retry_recovery\": %s, "
      "\"unsupervised_loss\": %s, \"stall_recovery\": %s}\n",
      gate_overhead ? "true" : "false", gate_allocs ? "true" : "false",
      gate_detected ? "true" : "false", gate_respawned ? "true" : "false",
      gate_accuracy ? "true" : "false", gate_retry ? "true" : "false",
      gate_unsup_loss ? "true" : "false", gate_stall ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ok = false;
  };
  if (!gate_overhead)
    fail("supervision p99 overhead exceeds 5% of the unsupervised path");
  if (!gate_allocs)
    fail("supervised steady-state request path allocated (expected 0)");
  if (!gate_detected)
    fail("an injected fault went undetected on a supervised server");
  if (!gate_respawned)
    fail("a quarantined replica was not respawned");
  if (!gate_accuracy)
    fail("supervised accuracy under BER/drop faults fell more than 2% "
         "below the no-fault baseline");
  if (!gate_retry)
    fail("NaN-storm requests were not recovered via retry");
  if (!gate_unsup_loss)
    fail("no unsupervised scenario showed measurable accuracy loss");
  if (!gate_stall)
    fail("stalled batch was not caught by the watchdog and respawned");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-threaded like bench_serve, so the overhead ratio is measured on
  // the same inline execution mode BENCH_serve.json records.
  setenv("SNNSEC_THREADS", "1", /*overwrite=*/0);
  return run(argc, argv);
}
