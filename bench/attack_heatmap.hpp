// Shared implementation of Figures 7 and 8: the (V_th, T) robustness heat
// map under white-box PGD at one noise budget.
#pragma once

#include <cstdio>

#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "core/report_image.hpp"
#include "core/sweet_spot.hpp"
#include "util/stopwatch.hpp"

namespace snnsec::bench {

/// `paper_eps` is the budget as printed in the paper (1.0 for Fig. 7,
/// 1.5 for Fig. 8); `quick_eps` is its calibrated quick-profile equivalent.
inline int run_attack_heatmap(const char* figure, double paper_eps,
                              double quick_eps, const char* csv_name) {
  core::ExplorationConfig cfg = core::default_profile();
  const double eps = util::full_profile_enabled() ? paper_eps : quick_eps;
  cfg.eps_grid = {eps};

  char description[128];
  std::snprintf(description, sizeof(description),
                "robustness heat map under PGD eps=%.2f (paper eps=%.2f)",
                eps, paper_eps);
  print_banner(figure, description, cfg);
  const data::DataBundle data = load_data(cfg);
  util::Stopwatch total;

  core::RobustnessExplorer explorer(cfg, cache_dir());
  const core::ExplorationReport report = explorer.explore(data);

  std::printf("\n%s\n", report.heatmap(0.0).c_str());
  std::printf("%s\n", report.heatmap(eps).c_str());

  // The paper's key observation: clean accuracy does not predict
  // robustness. Rank learnable cells and show extremes.
  core::SweetSpotFinder finder(eps, cfg.accuracy_threshold);
  const auto ranked = finder.rank(report);
  if (!ranked.empty()) {
    const auto& best = ranked.front();
    const auto& worst = ranked.back();
    std::printf("most robust cell : (V_th=%.2f, T=%lld) clean=%.2f rob=%.2f\n",
                best.cell->v_th, static_cast<long long>(best.cell->time_steps),
                best.cell->clean_accuracy, best.score);
    std::printf("least robust cell: (V_th=%.2f, T=%lld) clean=%.2f rob=%.2f\n",
                worst.cell->v_th,
                static_cast<long long>(worst.cell->time_steps),
                worst.cell->clean_accuracy, worst.score);
    const auto fragile = finder.fragile_high_accuracy_cells(report, 0.5);
    std::printf(
        "cells learnable yet fragile (rob < 0.5): %zu — the paper's (A3) "
        "counter-example%s\n",
        fragile.size(), fragile.empty() ? " did not appear at this budget"
                                        : "");
  } else {
    std::printf("no learnable cells at this profile\n");
  }

  report.write_csv(out_dir() + "/" + csv_name);
  std::string ppm_name = csv_name;
  ppm_name.replace(ppm_name.rfind(".csv"), 4, ".ppm");
  core::write_heatmap_ppm(report, eps, out_dir() + "/" + ppm_name);
  std::printf("csv: %s/%s | ppm: %s/%s | total %s\n", out_dir().c_str(),
              csv_name, out_dir().c_str(), ppm_name.c_str(),
              total.pretty().c_str());
  return 0;
}

}  // namespace snnsec::bench
