// Substrate micro-benchmarks (google-benchmark): the kernels the whole
// reproduction stands on — GEMM, im2col conv, LIF stepping, BPTT, encoder,
// and one full PGD step on the spiking LeNet.
#include <benchmark/benchmark.h>

#include "attacks/pgd.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "snn/lif_layer.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace snnsec;
using tensor::Shape;
using tensor::Tensor;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    Tensor c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  util::Rng rng(2);
  nn::Conv2d conv(nn::Conv2dSpec{6, 16, 5, 1, 2}, rng);
  const Tensor x = Tensor::randn(Shape{batch, 6, 14, 14}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, nn::Mode::kEval);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  util::Rng rng(3);
  nn::Conv2d conv(nn::Conv2dSpec{6, 16, 5, 1, 2}, rng);
  const Tensor x = Tensor::randn(Shape{batch, 6, 14, 14}, rng);
  const Tensor g = Tensor::randn(Shape{batch, 16, 14, 14}, rng);
  for (auto _ : state) {
    conv.forward(x, nn::Mode::kTrain);
    Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(64);

void BM_LifLayerForward(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  snn::LifLayer lif(t, snn::LifParameters{}, snn::Surrogate{});
  util::Rng rng(4);
  const Tensor x = Tensor::rand_uniform(Shape{t * 32, 256}, rng, 0.0f, 2.0f);
  for (auto _ : state) {
    Tensor z = lif.forward(x, nn::Mode::kEval);
    benchmark::DoNotOptimize(z.data());
  }
  // neuron-steps per second
  state.SetItemsProcessed(state.iterations() * t * 32 * 256);
}
BENCHMARK(BM_LifLayerForward)->Arg(16)->Arg(64);

void BM_LifLayerBptt(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  snn::LifLayer lif(t, snn::LifParameters{}, snn::Surrogate{});
  util::Rng rng(5);
  const Tensor x = Tensor::rand_uniform(Shape{t * 32, 256}, rng, 0.0f, 2.0f);
  const Tensor g = Tensor::randn(Shape{t * 32, 256}, rng);
  for (auto _ : state) {
    lif.forward(x, nn::Mode::kTrain);
    Tensor dx = lif.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * t * 32 * 256);
}
BENCHMARK(BM_LifLayerBptt)->Arg(16)->Arg(64);

void BM_SpikingLenetInference(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  snn::SnnConfig cfg;
  cfg.time_steps = t;
  util::Rng rng(6);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  const Tensor x = Tensor::rand_uniform(Shape{16, 1, 16, 16}, rng);
  for (auto _ : state) {
    Tensor logits = model->logits(x);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpikingLenetInference)->Arg(8)->Arg(32);

void BM_PgdStepOnSnn(benchmark::State& state) {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  snn::SnnConfig cfg;
  cfg.time_steps = 16;
  util::Rng rng(7);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  const Tensor x = Tensor::rand_uniform(Shape{8, 1, 16, 16}, rng);
  const std::vector<std::int64_t> y{0, 1, 2, 3, 4, 5, 6, 7};
  attack::PgdConfig pcfg;
  pcfg.steps = 1;
  pcfg.random_start = false;
  attack::AttackBudget budget;
  budget.epsilon = 0.1;
  for (auto _ : state) {
    attack::Pgd pgd(pcfg);
    Tensor adv = pgd.perturb(*model, x, y, budget);
    benchmark::DoNotOptimize(adv.data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_PgdStepOnSnn);

}  // namespace

BENCHMARK_MAIN();
