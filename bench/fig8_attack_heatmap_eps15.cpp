// Figure 8: robustness heat map over (V_th, T) under PGD with the paper's
// ε = 1.5 (quick-profile calibrated ε = 0.15). Claims to reproduce: the
// coexistence of high / medium / low robustness cells at a strong budget,
// e.g. the paper's (1, 48) high vs (2.25, 56) low vs (1, 32) medium.
#include "attack_heatmap.hpp"

int main() {
  return snnsec::bench::run_attack_heatmap("Fig. 8", /*paper_eps=*/1.5,
                                           /*quick_eps=*/0.15,
                                           "fig8_attack_heatmap_eps15.csv");
}
