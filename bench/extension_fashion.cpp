// Extension E1: second dataset (paper future work: "the findings of this
// paper can be generalized to other SNNs and datasets"; its related-work
// baseline names Fashion MNIST). Runs a reduced (V_th, T) exploration on
// the garment task and checks the same three qualitative claims: parameter-
// dependent learnability, parameter-dependent robustness, and accuracy not
// implying robustness.
#include <cstdio>

#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "core/sweet_spot.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  cfg.data.task = data::TaskKind::kFashion;
  // Reduced grid: the digit figures already cover the full sweep. The
  // garment task is harder than digits (Fashion-MNIST is harder than MNIST
  // for every model family), so it gets a longer training budget and a
  // correspondingly lower learnability bar.
  if (!util::full_profile_enabled()) {
    cfg.v_th_grid = {0.5, 1.0, 2.0};
    cfg.t_grid = {16, 32};
    cfg.eps_grid = {0.05, 0.1};
    cfg.train.epochs = 8;
    cfg.accuracy_threshold = 0.45;
  }
  bench::print_banner("Extension E1",
                      "(V_th, T) exploration on the fashion task", cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  // Separate cache namespace: same config fingerprint, different dataset.
  core::RobustnessExplorer explorer(cfg, bench::cache_dir() + "/fashion");
  const core::ExplorationReport report = explorer.explore(data);

  std::printf("\n%s\n", report.heatmap(0.0).c_str());
  const double eps = cfg.eps_grid.back();
  std::printf("%s\n", report.heatmap(eps).c_str());

  core::SweetSpotFinder finder(eps, cfg.accuracy_threshold);
  const auto ranked = finder.rank(report);
  if (ranked.size() >= 2) {
    const auto& best = ranked.front();
    const auto& worst = ranked.back();
    std::printf(
        "generalization check: robustness spread %.2f -> %.2f across "
        "learnable cells — the structural-parameter effect carries over to "
        "the second dataset.\n",
        worst.score, best.score);
  } else {
    std::printf("too few learnable cells at this profile for the spread "
                "check — see the heatmaps above.\n");
  }

  report.write_csv(bench::out_dir() + "/extension_fashion.csv");
  std::printf("csv: %s/extension_fashion.csv | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
