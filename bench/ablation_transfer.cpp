// Ablation A5 (extension): cross-architecture transferability.
//
// Craft adversarial examples on a *surrogate* model and evaluate them on a
// *victim* of the other architecture family — the practical black-box
// scenario of Marchisio et al. [14] ("Is Spiking Secure?"). Four cells:
//
//            evaluated on CNN     evaluated on SNN
//   CNN-crafted   (white-box)        CNN -> SNN transfer
//   SNN-crafted   SNN -> CNN         (white-box)
//
// Weak CNN->SNN transfer is a second, independent robustness mechanism on
// top of the structural-parameter effect the paper studies.
#include <cstdio>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "bench_common.hpp"
#include "core/baseline.hpp"
#include "core/explorer.hpp"
#include "nn/metrics.hpp"
#include "tensor/ops.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

namespace {

/// Accuracy of `victim` on a fixed adversarial batch.
double accuracy_on(snnsec::nn::Classifier& victim,
                   const snnsec::tensor::Tensor& adv,
                   const std::vector<std::int64_t>& labels) {
  const auto pred = victim.predict(adv);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  bench::print_banner("Ablation A5",
                      "adversarial transferability: CNN <-> SNN", cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  const double eps = util::full_profile_enabled() ? 1.0 : 0.1;
  const double v_th = 1.0;
  const std::int64_t t_window = util::full_profile_enabled() ? 64 : 16;

  core::RobustnessExplorer explorer(cfg, bench::cache_dir());
  const auto cnn = core::train_cnn_baseline(cfg, data);
  auto snn = explorer.train_cell(v_th, t_window, data);
  std::printf("CNN clean %.3f | SNN(%.1f, %lld) clean %.3f\n",
              cnn.clean_accuracy, v_th, static_cast<long long>(t_window),
              snn.clean_accuracy);

  const data::Dataset batch = data.test.take(
      cfg.attack_test_cap > 0 ? std::min<std::int64_t>(cfg.attack_test_cap, 60)
                              : 60);

  attack::AttackBudget budget;
  budget.epsilon = eps;
  attack::Pgd pgd_on_cnn(cfg.pgd);
  attack::Pgd pgd_on_snn(cfg.pgd);
  const tensor::Tensor adv_cnn =
      pgd_on_cnn.perturb(*cnn.model, batch.images, batch.labels, budget);
  const tensor::Tensor adv_snn =
      pgd_on_snn.perturb(*snn.model, batch.images, batch.labels, budget);

  const double cnn_white = accuracy_on(*cnn.model, adv_cnn, batch.labels);
  const double cnn_transfer = accuracy_on(*cnn.model, adv_snn, batch.labels);
  const double snn_white = accuracy_on(*snn.model, adv_snn, batch.labels);
  const double snn_transfer = accuracy_on(*snn.model, adv_cnn, batch.labels);
  const double cnn_clean = accuracy_on(*cnn.model, batch.images, batch.labels);
  const double snn_clean = accuracy_on(*snn.model, batch.images, batch.labels);

  std::printf("\naccuracy at eps=%.2f (crafted-on -> evaluated-on)\n", eps);
  std::printf("%-18s %-10s %-10s\n", "", "on CNN", "on SNN");
  std::printf("%-18s %-10.3f %-10.3f\n", "clean", cnn_clean, snn_clean);
  std::printf("%-18s %-10.3f %-10.3f\n", "CNN-crafted PGD", cnn_white,
              snn_transfer);
  std::printf("%-18s %-10.3f %-10.3f\n", "SNN-crafted PGD", cnn_transfer,
              snn_white);

  util::CsvWriter csv(bench::out_dir() + "/ablation_transfer.csv");
  csv.write_header({"set", "on_cnn", "on_snn"});
  {
    util::CsvWriter::Row r1;
    r1 << "clean" << cnn_clean << snn_clean;
    csv.write(r1);
    util::CsvWriter::Row r2;
    r2 << "cnn_crafted" << cnn_white << snn_transfer;
    csv.write(r2);
    util::CsvWriter::Row r3;
    r3 << "snn_crafted" << cnn_transfer << snn_white;
    csv.write(r3);
  }

  std::printf(
      "\ninterpretation: the SNN's accuracy on CNN-crafted examples (%.2f) "
      "vs its white-box accuracy (%.2f) measures how much of its robustness "
      "survives when the adversary lacks the surrogate-gradient path.\n",
      snn_transfer, snn_white);
  std::printf("csv: %s/ablation_transfer.csv | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
