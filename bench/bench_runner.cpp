// bench_runner: the hot-path performance trajectory, recorded.
//
// Times the kernels every experiment in the paper reduces to — GEMM
// (spike-sparse and dense LeNet-5 shapes), conv forward/backward, a full SNN
// forward at T in {10, 50}, and a 10-step PGD iteration — and emits
// BENCH_hotpath.json (median-of-k ns/op plus GFLOP/s where flops are
// well-defined) so the perf trajectory is CI-diffable instead of anecdotal.
//
// Also hosts the zero-allocation assertion: a global operator new/delete
// hook counts heap allocations, and after warm-up a steady-state
// Conv2d::forward_into call must perform exactly zero (the process exits
// non-zero otherwise). Runs single-threaded by default (SNNSEC_THREADS=1 is
// set unless the caller overrides) so numbers are comparable across runs.
//
// Usage: bench_runner [--quick] [--out PATH]
//   --quick   fewer reps / smaller shapes (CI smoke)
//   --out     output path (default BENCH_hotpath.json in the CWD, i.e. the
//             repo root when invoked as ./build/bench/bench_runner)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "attacks/pgd.hpp"
#include "nn/conv2d.hpp"
#include "snn/lif_layer.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/gemm.hpp"
#include "tensor/spike_events.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

// ---- allocation-counting hook ----------------------------------------------
// Replaces global new/delete for this binary only. Counts every heap
// allocation so steady-state zero-alloc claims are asserted, not asserted-by
// -eyeball.
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace snnsec;
using tensor::Shape;
using tensor::Tensor;
using tensor::Trans;

using Clock = std::chrono::steady_clock;

struct Result {
  std::string name;
  int reps = 0;
  double ns_op = 0.0;    // median wall time per op
  double gflops = 0.0;   // 0 when flops are not well-defined for the op
  std::int64_t extra_i = -1;  // op-specific integer payload (e.g. allocs)
};

/// Median-of-k timing of fn(), with `warmup` untimed runs first.
template <typename Fn>
double median_ns(int reps, int warmup, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  std::sort(ns.begin(), ns.end());
  const std::size_t mid = ns.size() / 2;
  return (ns.size() % 2 == 1) ? ns[mid] : 0.5 * (ns[mid - 1] + ns[mid]);
}

/// MNIST-like test image: ~15% lit foreground pixels (bright enough to
/// drive the constant-current encoder over threshold), dark background that
/// injects no current. Dense uniform noise would push every encoder neuron
/// to ~50% firing — a regime no digit image (or paper experiment) reaches —
/// and would benchmark the spiking stack outside its operating point.
Tensor sparse_image(const Shape& shape, util::Rng& rng) {
  Tensor x = Tensor::rand_uniform(shape, rng);
  const Tensor mask = Tensor::bernoulli(shape, rng, 0.15);
  float* px = x.data();
  const float* pm = mask.data();
  for (std::int64_t i = 0; i < x.numel(); ++i)
    px[i] = pm[i] * (0.6f + 0.4f * px[i]);
  return x;
}

Result bench_gemm(const std::string& name, int reps, int warmup,
                  const Tensor& a, const Tensor& b, Trans tb,
                  tensor::SparsityHint hint) {
  const std::int64_t m = a.dim(0), k = a.dim(1);
  const std::int64_t n = (tb == Trans::kNo) ? b.dim(1) : b.dim(0);
  Tensor c(Shape{m, n});
  Result r;
  r.name = name;
  r.reps = reps;
  r.ns_op = median_ns(reps, warmup, [&] {
    tensor::gemm(Trans::kNo, tb, 1.0f, a, b, 0.0f, c, hint);
  });
  r.gflops = (2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k)) /
             r.ns_op;
  return r;
}

/// Event kernel on the Linear layout (C = A W^T): timing INCLUDES the
/// per-call list build — that is the cost a consumer-side layer actually
/// pays. GFLOP/s is dense-equivalent throughput (2mnk over wall time) so
/// the speedup against the dense kernel reads directly off the two rows.
Result bench_events(const std::string& name, int reps, int warmup,
                    const Tensor& a, const Tensor& w) {
  const std::int64_t m = a.dim(0), k = a.dim(1);
  const std::int64_t n = w.dim(0);
  Tensor c(Shape{m, n});
  Result r;
  r.name = name;
  r.reps = reps;
  r.ns_op = median_ns(reps, warmup, [&] {
    util::Workspace& ws = util::Workspace::local();
    util::Workspace::Scope scope(ws);
    const tensor::EventRows ev =
        tensor::build_event_rows(a.data(), k, m, k, ws);
    tensor::gemm_events(ev, Trans::kYes, n, 1.0f, w.data(), k, 0.0f, c.data(),
                        n);
  });
  r.gflops = (2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k)) /
             r.ns_op;
  return r;
}

Result bench_gemm_reference(const std::string& name, int reps, int warmup,
                            const Tensor& a, const Tensor& b, Trans tb) {
  const std::int64_t m = a.dim(0), k = a.dim(1);
  const std::int64_t n = (tb == Trans::kNo) ? b.dim(1) : b.dim(0);
  Tensor c(Shape{m, n});
  Result r;
  r.name = name;
  r.reps = reps;
  r.ns_op = median_ns(reps, warmup, [&] {
    tensor::gemm_reference(Trans::kNo, tb, 1.0f, a, b, 0.0f, c);
  });
  r.gflops = (2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k)) /
             r.ns_op;
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results,
                double fc1_speedup, double events_speedup,
                std::int64_t conv_allocs, std::int64_t event_allocs,
                bool quick) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_runner: cannot open %s for writing\n",
                 path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"hotpath\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"threads\": %zu,\n", util::ThreadPool::global().size());
  std::fprintf(f, "  \"gemm_dense_fc1_speedup_vs_reference\": %.3f,\n",
               fc1_speedup);
  std::fprintf(f, "  \"gemm_events_fc1_r10_speedup_vs_dense\": %.3f,\n",
               events_speedup);
  std::fprintf(f, "  \"conv_forward_steady_state_allocs\": %lld,\n",
               static_cast<long long>(conv_allocs));
  std::fprintf(f, "  \"event_forward_steady_state_allocs\": %lld,\n",
               static_cast<long long>(event_allocs));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"reps\": %d, \"ns_op\": %.1f",
                 r.name.c_str(), r.reps, r.ns_op);
    if (r.gflops > 0.0) std::fprintf(f, ", \"gflops\": %.3f", r.gflops);
    if (r.extra_i >= 0)
      std::fprintf(f, ", \"allocs\": %lld", static_cast<long long>(r.extra_i));
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int run(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_runner [--quick] [--out PATH]\n");
      return 2;
    }
  }
  const int reps = quick ? 5 : 15;
  const int warmup = 2;
  std::vector<Result> results;

  // ---- GEMM: dense and spike-sparse LeNet-5 fc1 (batch 64, 400 -> 120),
  // exactly the Linear::forward layout (B = W, transposed).
  util::Rng rng(42);
  const Tensor fc1_w = Tensor::randn(Shape{120, 400}, rng);
  const Tensor fc1_dense = Tensor::randn(Shape{64, 400}, rng);
  const Tensor fc1_spikes = Tensor::bernoulli(Shape{64, 400}, rng, 0.1);

  const Result ref = bench_gemm_reference("gemm_reference_fc1", reps, warmup,
                                          fc1_dense, fc1_w, Trans::kYes);
  const Result dense =
      bench_gemm("gemm_dense_fc1", reps, warmup, fc1_dense, fc1_w,
                 Trans::kYes, tensor::SparsityHint::kDense);
  const Result sparse =
      bench_gemm("gemm_sparse_fc1", reps, warmup, fc1_spikes, fc1_w,
                 Trans::kYes, tensor::SparsityHint::kSparse);
  // A square shape big enough to stress all three cache-block loops.
  const Tensor sq_a = Tensor::randn(Shape{384, 384}, rng);
  const Tensor sq_b = Tensor::randn(Shape{384, 384}, rng);
  const Result square =
      bench_gemm("gemm_dense_384", quick ? 3 : reps, warmup, sq_a, sq_b,
                 Trans::kNo, tensor::SparsityHint::kDense);
  results.push_back(ref);
  results.push_back(dense);
  results.push_back(sparse);
  results.push_back(square);
  const double fc1_speedup = ref.ns_op / dense.ns_op;
  std::printf("gemm fc1: reference %.0f ns, blocked %.0f ns  (%.2fx)\n",
              ref.ns_op, dense.ns_op, fc1_speedup);

  // ---- Per-firing-rate kernel curve: the fc1 shape at spike densities
  // 5/10/20/35/50%, zero-skip (sparse) and event-list kernels against the
  // rate-independent dense row above. This is the curve that justifies the
  // role-declared kernel resolution: at SNN firing rates (5-20%) the event
  // kernel wins outright, and the crossover is visible in the tail rates.
  double events_speedup = 0.0;
  for (const int rate : {5, 10, 20, 35, 50}) {
    char suffix[8];
    std::snprintf(suffix, sizeof suffix, "_r%02d", rate);
    const Tensor spikes =
        Tensor::bernoulli(Shape{64, 400}, rng, rate / 100.0);
    const Result rs =
        bench_gemm("gemm_sparse_fc1" + std::string(suffix), reps, warmup,
                   spikes, fc1_w, Trans::kYes, tensor::SparsityHint::kSparse);
    const Result re = bench_events("gemm_events_fc1" + std::string(suffix),
                                   reps, warmup, spikes, fc1_w);
    std::printf(
        "gemm fc1 @%2d%%: dense %.0f ns, sparse %.0f ns, events %.0f ns "
        "(events %.2fx dense)\n",
        rate, dense.ns_op, rs.ns_op, re.ns_op, dense.ns_op / re.ns_op);
    if (rate == 10) events_speedup = dense.ns_op / re.ns_op;
    results.push_back(rs);
    results.push_back(re);
  }

  // ---- Conv2d forward/backward: LeNet-5 conv2 (6 -> 16, 5x5, pad 2) on
  // 14x14 feature maps, batch 8.
  nn::Conv2d conv(nn::Conv2dSpec{6, 16, 5, 1, 2}, rng);
  const Tensor cx = Tensor::randn(Shape{8, 6, 14, 14}, rng);
  const Tensor cg = Tensor::randn(Shape{8, 16, 14, 14}, rng);
  {
    Result r;
    r.name = "conv2d_forward";
    r.reps = reps;
    Tensor y;
    r.ns_op = median_ns(reps, warmup,
                        [&] { conv.forward_into(cx, y, nn::Mode::kEval); });
    results.push_back(r);
  }
  {
    Result r;
    r.name = "conv2d_backward";
    r.reps = reps;
    r.ns_op = median_ns(reps, warmup, [&] {
      conv.forward(cx, nn::Mode::kTrain);
      Tensor dx = conv.backward(cg);
    });
    results.push_back(r);
  }

  // ---- Zero-alloc assertion: after warm-up, a Conv2d::forward_into call in
  // eval mode must not touch the heap at all (workspace arena + reused
  // output buffer). Counted over several calls to catch stragglers.
  std::int64_t conv_allocs = 0;
  {
    nn::Conv2d conv2(nn::Conv2dSpec{6, 16, 5, 1, 2}, rng);
    Tensor y;
    for (int i = 0; i < 3; ++i) conv2.forward_into(cx, y, nn::Mode::kEval);
    const std::int64_t before = g_allocs.load();
    for (int i = 0; i < 10; ++i) conv2.forward_into(cx, y, nn::Mode::kEval);
    conv_allocs = g_allocs.load() - before;
    Result r;
    r.name = "conv2d_forward_steady_state";
    r.reps = 10;
    r.extra_i = conv_allocs;
    results.push_back(r);
    std::printf("conv2d_forward steady-state allocs over 10 calls: %lld\n",
                static_cast<long long>(conv_allocs));
  }

  // ---- Event-driven conv forward: the same conv2 shape fed 10% spikes
  // through the event-resolved kernel (what the spiking stack runs in eval),
  // plus the event path's own steady-state zero-alloc assertion — lists,
  // packed weights, and the Ct buffer must all come from the arena.
  std::int64_t event_allocs = 0;
  {
    nn::Conv2d conv_ev(nn::Conv2dSpec{6, 16, 5, 1, 2}, rng);
    conv_ev.set_input_hint(tensor::SparsityHint::kEvents);
    const Tensor sx = Tensor::bernoulli(Shape{8, 6, 14, 14}, rng, 0.1);
    Tensor y;
    Result r;
    r.name = "conv2d_forward_events";
    r.reps = reps;
    r.ns_op = median_ns(reps, warmup,
                        [&] { conv_ev.forward_into(sx, y, nn::Mode::kEval); });
    const std::int64_t before = g_allocs.load();
    for (int i = 0; i < 10; ++i) conv_ev.forward_into(sx, y, nn::Mode::kEval);
    event_allocs = g_allocs.load() - before;
    r.extra_i = event_allocs;
    results.push_back(r);
    std::printf(
        "conv2d_forward_events %.0f ns; steady-state allocs over 10 calls: "
        "%lld\n",
        r.ns_op, static_cast<long long>(event_allocs));
  }

  // ---- Full SNN forward at T in {10, 50}: half-scale spiking LeNet on
  // 16x16 inputs, batch 8 — the unit of work every attack step multiplies.
  for (const std::int64_t t : {std::int64_t{10}, std::int64_t{50}}) {
    nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
    arch.image_size = 16;
    snn::SnnConfig cfg;
    cfg.time_steps = t;
    util::Rng mrng(7);
    auto model = snn::build_spiking_lenet(arch, cfg, mrng);
    const Tensor x = sparse_image(Shape{8, 1, 16, 16}, mrng);
    Result r;
    r.name = "snn_forward_T" + std::to_string(t);
    r.reps = quick ? 3 : 7;
    r.ns_op = median_ns(r.reps, 1, [&] {
      Tensor logits = model->logits(x);
    });
    results.push_back(r);
  }

  // ---- One 10-step PGD iteration on the same small SNN (T=10, batch 4):
  // the paper's Fig. 7/8 unit of work.
  {
    nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
    arch.image_size = 16;
    snn::SnnConfig cfg;
    cfg.time_steps = 10;
    util::Rng mrng(8);
    auto model = snn::build_spiking_lenet(arch, cfg, mrng);
    const Tensor x = sparse_image(Shape{4, 1, 16, 16}, mrng);
    const std::vector<std::int64_t> labels{0, 1, 2, 3};
    attack::PgdConfig pcfg;
    pcfg.steps = 10;
    pcfg.random_start = false;
    attack::AttackBudget budget;
    budget.epsilon = 0.1;
    attack::Pgd pgd(pcfg);
    Result r;
    r.name = "pgd_10step";
    r.reps = quick ? 3 : 5;
    r.ns_op = median_ns(r.reps, 1, [&] {
      Tensor adv = pgd.perturb(*model, x, labels, budget);
    });
    results.push_back(r);
  }

  write_json(out, results, fc1_speedup, events_speedup, conv_allocs,
             event_allocs, quick);
  std::printf("wrote %s\n", out.c_str());

  if (conv_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: Conv2d::forward_into allocated %lld times in steady "
                 "state (expected 0)\n",
                 static_cast<long long>(conv_allocs));
    return 1;
  }
  if (event_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: event-driven conv forward allocated %lld times in "
                 "steady state (expected 0)\n",
                 static_cast<long long>(event_allocs));
    return 1;
  }
  if (fc1_speedup < 3.0)
    std::fprintf(stderr,
                 "WARN: blocked gemm only %.2fx the seed scalar kernel on the "
                 "dense fc1 shape (target >= 3x)\n",
                 fc1_speedup);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-threaded by default so ns/op is comparable across machines and
  // runs; export SNNSEC_THREADS before invoking to measure scaling.
  setenv("SNNSEC_THREADS", "1", /*overwrite=*/0);
  return run(argc, argv);
}
