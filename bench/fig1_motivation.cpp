// Figure 1 (motivational case study): PGD accuracy vs noise budget ε for a
// 5-layer CNN and an SNN with the same layers/neurons, default structural
// parameters. The paper's qualitative claims to reproduce:
//   (1) at small ε the CNN is more accurate,
//   (2) the curves cross at a moderate ε (paper: ~0.5; quick axis: ~0.1),
//   (3) beyond the crossover the SNN holds a large accuracy gap (>50%).
#include <cstdio>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "bench_common.hpp"
#include "core/baseline.hpp"
#include "core/explorer.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  bench::print_banner("Fig. 1", "PGD on CNN vs SNN (default V_th, T)", cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  // Default structural parameters: the paper's (V_th, T) = (1, 64); the
  // quick profile's T axis tops out at 32, so its default is (1, 32).
  const double v_th = 1.0;
  const std::int64_t t_window =
      util::full_profile_enabled() ? 64 : cfg.t_grid.back();

  core::RobustnessExplorer explorer(cfg, bench::cache_dir());
  std::printf("\ntraining CNN baseline...\n");
  const auto cnn = core::train_cnn_baseline(cfg, data);
  std::printf("CNN clean accuracy: %.3f (%.1fs)\n", cnn.clean_accuracy,
              cnn.train_seconds);
  std::printf("training SNN (V_th=%.2f, T=%lld)...\n", v_th,
              static_cast<long long>(t_window));
  auto snn_cell = explorer.train_cell(v_th, t_window, data);
  std::printf("SNN clean accuracy: %.3f (%.1fs%s)\n", snn_cell.clean_accuracy,
              snn_cell.train_seconds, snn_cell.from_cache ? ", cached" : "");

  data::Dataset attack_set = data.test;
  if (cfg.attack_test_cap > 0 && attack_set.size() > cfg.attack_test_cap)
    attack_set = attack_set.take(cfg.attack_test_cap);

  attack::EvalConfig eval_cfg;
  eval_cfg.batch_size = cfg.eval_batch;
  const auto epsilons = bench::curve_epsilons();

  util::CsvWriter csv(bench::out_dir() + "/fig1_motivation.csv");
  csv.write_header({"epsilon", "cnn_accuracy", "snn_accuracy"});

  std::printf("\n%-10s %-14s %-14s %s\n", "epsilon", "CNN accuracy",
              "SNN accuracy", "(PGD, white-box)");
  util::PlotSeries cnn_series{"CNN", {}};
  util::PlotSeries snn_series{"SNN", {}};
  double crossover = -1.0;
  double max_gap = 0.0;
  for (const double eps : epsilons) {
    attack::Pgd pgd_cnn(cfg.pgd);
    attack::Pgd pgd_snn(cfg.pgd);
    const auto pt_cnn = attack::evaluate_attack(
        *cnn.model, pgd_cnn, attack_set.images, attack_set.labels, eps,
        eval_cfg);
    const auto pt_snn = attack::evaluate_attack(
        *snn_cell.model, pgd_snn, attack_set.images, attack_set.labels, eps,
        eval_cfg);
    std::printf("%-10.3f %-14.3f %-14.3f\n", eps, pt_cnn.robustness,
                pt_snn.robustness);
    cnn_series.y.push_back(pt_cnn.robustness);
    snn_series.y.push_back(pt_snn.robustness);
    util::CsvWriter::Row row;
    row << eps << pt_cnn.robustness << pt_snn.robustness;
    csv.write(row);
    if (crossover < 0.0 && eps > 0.0 && pt_snn.robustness > pt_cnn.robustness)
      crossover = eps;
    max_gap = std::max(max_gap, pt_snn.robustness - pt_cnn.robustness);
  }

  util::PlotOptions plot_opts;
  plot_opts.x_label = "eps";
  std::printf("\n%s", util::ascii_plot(epsilons, {cnn_series, snn_series},
                                        plot_opts).c_str());
  std::printf("\nsummary: crossover at eps %s; max SNN-over-CNN gap %.1f%%\n",
              crossover < 0 ? "not reached" :
                  util::format_float(crossover, 3).c_str(),
              max_gap * 100);
  std::printf("csv: %s/fig1_motivation.csv | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
