// Figure 6 (learnability study): clean-accuracy heat map over the
// (V_th, T) grid. Claims to reproduce:
//   (1) the high-accuracy region sits toward low V_th / high T,
//   (2) the map is NOT monotonic — dead cells border high-accuracy cells
//       (in our substrate the T=8 column collapses while T>=16 learns).
#include <cstdio>

#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "core/report_image.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  cfg.eps_grid.clear();  // learnability only — no attacks in this figure
  bench::print_banner("Fig. 6", "clean-accuracy heat map over (V_th, T)",
                      cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  core::RobustnessExplorer explorer(cfg, bench::cache_dir());
  const core::ExplorationReport report = explorer.explore(data);

  std::printf("\n%s\n", report.heatmap(0.0).c_str());
  std::printf("learnable cells (acc >= %.0f%%): %.0f%%\n",
              cfg.accuracy_threshold * 100,
              report.learnable_fraction() * 100);

  // Non-monotonicity check (pointer 2 of the figure): is there a cell below
  // threshold adjacent (in T) to one far above it?
  bool non_monotone = false;
  for (const double v : cfg.v_th_grid) {
    for (std::size_t j = 0; j + 1 < cfg.t_grid.size(); ++j) {
      const auto* a = report.find(v, cfg.t_grid[j]);
      const auto* b = report.find(v, cfg.t_grid[j + 1]);
      if (a && b &&
          std::abs(a->clean_accuracy - b->clean_accuracy) > 0.4)
        non_monotone = true;
    }
  }
  std::printf("sharp accuracy cliffs between neighboring cells: %s\n",
              non_monotone ? "yes (matches the paper's pointer 2)" : "no");

  report.write_csv(bench::out_dir() + "/fig6_learnability.csv");
  core::write_heatmap_ppm(report, 0.0,
                          bench::out_dir() + "/fig6_learnability.ppm");
  std::printf("csv+ppm: %s/fig6_learnability.{csv,ppm} | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
