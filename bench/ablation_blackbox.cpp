// Ablation A4 (extension): white-box vs black-box robustness.
//
// If a (V_th, T) cell resists white-box PGD but falls to the gradient-free
// SimBA at the same budget, its apparent robustness is gradient
// obfuscation (the surrogate hides the attack direction) rather than a
// genuinely flat decision landscape. Run on the most and least robust
// learnable cells from the grid (cached from Figs. 6-8).
#include <cstdio>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "attacks/simba.hpp"
#include "bench_common.hpp"
#include "core/explorer.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace snnsec;

  core::ExplorationConfig cfg = core::default_profile();
  bench::print_banner("Ablation A4", "white-box PGD vs black-box SimBA", cfg);
  const data::DataBundle data = bench::load_data(cfg);
  util::Stopwatch total;

  const double eps = util::full_profile_enabled() ? 1.0 : 0.1;
  struct Cell {
    double v_th;
    std::int64_t t;
    const char* tag;
  };
  const std::vector<Cell> cells =
      util::full_profile_enabled()
          ? std::vector<Cell>{{1.0, 48, "robust"}, {2.25, 56, "fragile"}}
          : std::vector<Cell>{{1.0, 16, "robust"}, {0.5, 32, "fragile"}};

  data::Dataset attack_set = data.test.take(
      cfg.attack_test_cap > 0 ? std::min<std::int64_t>(cfg.attack_test_cap, 40)
                              : 40);
  attack::EvalConfig eval_cfg;
  eval_cfg.batch_size = cfg.eval_batch;

  util::CsvWriter csv(bench::out_dir() + "/ablation_blackbox.csv");
  csv.write_header({"v_th", "T", "clean_accuracy", "pgd_robustness",
                    "simba_robustness"});

  std::printf("\n%-9s %-7s %-5s %-8s %-10s %-10s\n", "cell", "V_th", "T",
              "clean", "PGD rob", "SimBA rob");
  core::RobustnessExplorer explorer(cfg, bench::cache_dir());
  for (const Cell& cell : cells) {
    auto trained = explorer.train_cell(cell.v_th, cell.t, data);
    attack::Pgd pgd(cfg.pgd);
    const auto pt_pgd =
        attack::evaluate_attack(*trained.model, pgd, attack_set.images,
                                attack_set.labels, eps, eval_cfg);
    attack::SimbaConfig scfg;
    scfg.max_queries = 600;  // per batch; ~2 queries per pixel direction
    attack::Simba simba(scfg);
    const auto pt_simba =
        attack::evaluate_attack(*trained.model, simba, attack_set.images,
                                attack_set.labels, eps, eval_cfg);
    std::printf("%-9s %-7.2f %-5lld %-8.3f %-10.3f %-10.3f\n", cell.tag,
                cell.v_th, static_cast<long long>(cell.t),
                trained.clean_accuracy, pt_pgd.robustness,
                pt_simba.robustness);
    util::CsvWriter::Row row;
    row << cell.v_th << cell.t << trained.clean_accuracy << pt_pgd.robustness
        << pt_simba.robustness;
    csv.write(row);
  }

  std::printf(
      "\ninterpretation: SimBA >> PGD on a cell means its white-box "
      "robustness is NOT just gradient obfuscation; PGD >> SimBA at equal "
      "budget means the surrogate gradient leaks more than raw queries.\n");
  std::printf("csv: %s/ablation_blackbox.csv | total %s\n",
              bench::out_dir().c_str(), total.pretty().c_str());
  return 0;
}
