// Whole-program analyses over per-TU models: hot-path reachability (A1),
// lock-order discipline (A2), concurrency heuristics (A3), metric-name
// registry (A4), and the include-layering rules.
//
// Resolution is deliberately "lite": member types come from the extracted
// class tables, call targets from unique-name or class-scoped matching, and
// anything ambiguous resolves to nothing rather than to a guess. The analyses
// are therefore under-approximate (they can miss), never speculative about
// identity — which keeps findings actionable.
#include "analyze.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "source_view.hpp"

namespace snnsec::analyze {

namespace {

using lint::ident_char;

std::string stem(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::size_t begin = slash == std::string::npos ? 0 : slash + 1;
  std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || dot < begin) dot = path.size();
  return path.substr(begin, dot - begin);
}

std::string to_lower(std::string s) {
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string last_component(std::string_view chain) {
  const std::size_t dot = chain.rfind('.');
  const std::size_t col = chain.rfind(':');
  std::size_t cut = 0;
  if (dot != std::string_view::npos) cut = dot + 1;
  if (col != std::string_view::npos && col + 1 > cut) cut = col + 1;
  return std::string(chain.substr(cut));
}

/// Mirrors model.cpp: names a bare-call fallback never resolves globally.
bool common_method_name(std::string_view id) {
  static const std::set<std::string_view> names = {
      "size",   "empty",   "begin",  "end",      "data",       "clear",
      "front",  "back",    "push",   "pop",      "insert",     "erase",
      "find",   "count",   "at",     "reserve",  "resize",     "swap",
      "get",    "reset",   "release", "load",    "store",      "exchange",
      "wait",   "lock",    "unlock", "try_lock", "notify_one", "notify_all",
      "join",   "detach",  "c_str",  "str",      "substr",     "append",
      "what",   "value",   "has_value", "first", "second",     "min",
      "max",    "abs",     "to_string"};
  return names.count(id) != 0;
}

int edit_distance_capped(const std::string& a, const std::string& b, int cap) {
  const int n = static_cast<int>(a.size()), m = static_cast<int>(b.size());
  if (std::abs(n - m) > cap) return cap + 1;
  std::vector<int> prev(m + 1), cur(m + 1);
  for (int j = 0; j <= m; ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    cur[0] = i;
    int row_min = cur[0];
    for (int j = 1; j <= m; ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > cap) return cap + 1;
    std::swap(prev, cur);
  }
  return prev[m];
}

struct FnRef {
  int model = 0;
  int fn = 0;
};

class Analyzer {
 public:
  Analyzer(const std::vector<FileModel>& models, const Options& opts)
      : models_(models), opts_(opts) {}

  AnalyzeResult run() {
    index();
    rule_nolint();
    a1_hot_paths();
    a2_lock_order();
    a3_concurrency();
    a4_metric_registry();
    layering();
    finish();
    return std::move(result_);
  }

 private:
  const std::vector<FileModel>& models_;
  const Options& opts_;
  AnalyzeResult result_;

  // --- indexes -------------------------------------------------------------
  std::map<std::string, std::vector<MemberDecl>> class_members_;
  std::map<std::string, std::set<std::string>> class_by_last_;
  std::vector<FnRef> fns_;
  std::map<std::string, std::vector<int>> fn_by_label_;
  std::map<std::string, std::vector<int>> fn_by_name_;
  std::map<std::string, std::vector<int>> fn_by_cls_name_;  ///< "Cls#name"
  std::set<std::string> reported_;  ///< file:line:rule dedupe

  const FunctionInfo& fn(int i) const {
    return models_[fns_[i].model].functions[fns_[i].fn];
  }
  const FileModel& file_of(int i) const { return models_[fns_[i].model]; }

  static std::string label_of(const FunctionInfo& f) {
    return f.cls.empty() ? f.name : f.cls + "::" + f.name;
  }

  void index() {
    for (std::size_t mi = 0; mi < models_.size(); ++mi) {
      for (const ClassInfo& c : models_[mi].classes) {
        auto& members = class_members_[c.path];
        members.insert(members.end(), c.members.begin(), c.members.end());
        const std::size_t col = c.path.rfind(':');
        const std::string lastname =
            col == std::string::npos ? c.path : c.path.substr(col + 1);
        class_by_last_[lastname].insert(c.path);
      }
      for (std::size_t fi = 0; fi < models_[mi].functions.size(); ++fi) {
        const FunctionInfo& f = models_[mi].functions[fi];
        const int id = static_cast<int>(fns_.size());
        fns_.push_back({static_cast<int>(mi), static_cast<int>(fi)});
        fn_by_label_[label_of(f)].push_back(id);
        fn_by_name_[f.name].push_back(id);
        if (!f.cls.empty()) fn_by_cls_name_[f.cls + "#" + f.name].push_back(id);
        // Methods defined out of line with a qualified name should also be
        // findable through the bare class name ("Server::submit" when cls is
        // "Server" inside namespace serve).
      }
    }
    result_.stats.functions = fns_.size();
  }

  // --- suppression-aware reporting -----------------------------------------

  bool suppressed(const FileModel& model, int line, const std::string& rule,
                  const std::string& alias = "") {
    for (const SuppressionLine& s : model.suppressions) {
      if (!s.justified) continue;
      if (s.rule != rule && (alias.empty() || s.rule != alias)) continue;
      if ((!s.next_line && s.line == line) ||
          (s.next_line && s.line == line - 1))
        return true;
    }
    return false;
  }

  void report(const FileModel& model, int line, const std::string& rule_id,
              std::string message, std::string suggestion,
              const std::string& alias_rule = "") {
    const std::string rule = "snnsec-" + rule_id;
    const std::string key = model.path + ":" + std::to_string(line) + ":" + rule;
    if (!reported_.insert(key).second) return;
    Finding f;
    f.file = model.path;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    f.suggestion = std::move(suggestion);
    if (suppressed(model, line, rule, alias_rule))
      result_.suppressed.push_back(std::move(f));
    else
      result_.findings.push_back(std::move(f));
  }

  // --- meta rule: unjustified snnsec NOLINTs naming analyze rules ----------

  void rule_nolint() {
    std::set<std::string> ours;
    for (std::string_view id : rule_ids()) ours.insert("snnsec-" + std::string(id));
    for (const FileModel& m : models_) {
      for (const SuppressionLine& s : m.suppressions) {
        if (s.justified || ours.count(s.rule) == 0) continue;
        report(m, s.line, "nolint-justification",
               "NOLINT(" + s.rule + ") without a justification; it suppresses "
               "nothing",
               "append `: <why this is safe>` after the closing paren");
      }
    }
  }

  // --- name-resolution-lite helpers ----------------------------------------

  /// Member lookup walking from `cls_path` outward through enclosing classes.
  /// Returns declaring-class path; empty if not found.
  std::pair<std::string, std::string> member_lookup(std::string cls_path,
                                                    const std::string& name) {
    while (true) {
      auto it = class_members_.find(cls_path);
      if (it != class_members_.end()) {
        for (const MemberDecl& m : it->second)
          if (m.name == name) return {cls_path, m.type};
      }
      const std::size_t col = cls_path.rfind("::");
      if (col == std::string::npos) return {"", ""};
      cls_path.resize(col);
    }
  }

  /// Declared type text -> unique project class path ("" when ambiguous).
  std::string type_to_class(std::string type) {
    for (std::string_view strip : {"const ", "volatile ", "mutable "}) {
      std::size_t p;
      while ((p = type.find(strip)) != std::string::npos)
        type.erase(p, strip.size());
    }
    type.erase(std::remove_if(type.begin(), type.end(),
                              [](char c) { return c == '&' || c == '*'; }),
               type.end());
    type = [&] {
      std::size_t b = type.find_first_not_of(' ');
      std::size_t e = type.find_last_not_of(' ');
      return b == std::string::npos ? std::string()
                                    : type.substr(b, e - b + 1);
    }();
    // Unwrap smart pointers / wrappers down to the pointee.
    for (bool unwrapped = true; unwrapped;) {
      unwrapped = false;
      for (std::string_view w :
           {"std::unique_ptr<", "std::shared_ptr<", "std::optional<",
            "std::reference_wrapper<", "std::atomic<", "unique_ptr<",
            "shared_ptr<", "optional<", "reference_wrapper<", "atomic<"}) {
        if (type.compare(0, w.size(), w) == 0 && type.back() == '>') {
          type = type.substr(w.size(), type.size() - w.size() - 1);
          unwrapped = true;
          break;
        }
      }
    }
    if (type.compare(0, 5, "std::") == 0) return "";
    // Last :: component, template args stripped.
    const std::size_t lt = type.find('<');
    if (lt != std::string::npos) type.resize(lt);
    const std::size_t col = type.rfind("::");
    const std::string lastname =
        col == std::string::npos ? type : type.substr(col + 2);
    if (lastname.empty()) return "";
    auto it = class_by_last_.find(lastname);
    if (it == class_by_last_.end() || it->second.size() != 1) {
      // Fall back: an exact class-path match even when the last name is
      // ambiguous or the class table keyed it with enclosing scopes.
      if (class_members_.count(lastname)) return lastname;
      return "";
    }
    return *it->second.begin();
  }

  std::string base_type_of(int fid, const std::string& base) {
    const FunctionInfo& f = fn(fid);
    for (const auto& [name, type] : f.params)
      if (name == base) return type;
    for (const auto& [name, type] : f.locals)
      if (name == base) return type;
    const auto [cls, type] = member_lookup(f.cls, base);
    return type;
  }

  /// Canonical lock-order node for a mutex expression in a function context.
  std::string canonical_mutex(int fid, const std::string& expr) {
    const FunctionInfo& f = fn(fid);
    if (expr.find("::") != std::string::npos) return expr;
    const std::size_t dot = expr.rfind('.');
    if (dot == std::string::npos) {
      for (const std::string& lm : f.local_mutexes)
        if (lm == expr) return label_of(f) + "::" + expr;
      const auto [cls, type] = member_lookup(f.cls, expr);
      if (!cls.empty()) return cls + "::" + expr;
      return "<" + stem(file_of(fid).path) + ">::" + expr;
    }
    const std::string base = expr.substr(0, expr.find('.'));
    const std::string member = expr.substr(dot + 1);
    const std::string cls = type_to_class(base_type_of(fid, base));
    if (!cls.empty()) return cls + "::" + member;
    return "<" + stem(file_of(fid).path) + ">::" + expr;
  }

  /// Resolve a call chain to candidate function ids (empty = unknown).
  std::vector<int> resolve_call(int fid, const std::string& chain) {
    if (chain.compare(0, 5, "std::") == 0) return {};
    if (chain.find("::") != std::string::npos) {
      // Qualified: exact label, then suffix match on :: boundaries. Labels
      // carry class scopes but not namespaces, so when nothing matches we
      // strip the leading component ("util::parallel_for" -> "parallel_for")
      // and retry.
      std::vector<int> out;
      auto it = fn_by_label_.find(chain);
      if (it != fn_by_label_.end()) return it->second;
      for (const auto& [label, ids] : fn_by_label_) {
        if (label.size() > chain.size() &&
            label.compare(label.size() - chain.size(), chain.size(), chain) ==
                0 &&
            label[label.size() - chain.size() - 1] == ':')
          out.insert(out.end(), ids.begin(), ids.end());
      }
      if (!out.empty()) return out;
      return resolve_call(fid, chain.substr(chain.find("::") + 2));
    }
    const std::size_t dot = chain.rfind('.');
    if (dot != std::string::npos) {
      const std::string base = chain.substr(0, chain.find('.'));
      const std::string method = chain.substr(dot + 1);
      const std::string cls = type_to_class(base_type_of(fid, base));
      if (cls.empty()) return {};
      auto it = fn_by_cls_name_.find(cls + "#" + method);
      if (it != fn_by_cls_name_.end()) return it->second;
      // Method of a nested/derived scope: match any class path ending in cls.
      std::vector<int> out;
      for (const auto& [key, ids] : fn_by_cls_name_) {
        const std::size_t hash = key.find('#');
        const std::string kcls = key.substr(0, hash);
        if (key.substr(hash + 1) != method) continue;
        if (kcls.size() > cls.size() &&
            kcls.compare(kcls.size() - cls.size(), cls.size(), cls) == 0 &&
            kcls[kcls.size() - cls.size() - 1] == ':')
          out.insert(out.end(), ids.begin(), ids.end());
      }
      return out;
    }
    // Bare call: same-class method first, then a unique global name.
    const FunctionInfo& f = fn(fid);
    if (!f.cls.empty()) {
      auto it = fn_by_cls_name_.find(f.cls + "#" + chain);
      if (it != fn_by_cls_name_.end()) return it->second;
    }
    if (common_method_name(chain)) return {};
    auto it = fn_by_name_.find(chain);
    if (it != fn_by_name_.end() && it->second.size() == 1) return it->second;
    return {};
  }

  // --- A1: hot-path reachability -------------------------------------------

  void a1_hot_paths() {
    std::map<int, int> parent;       ///< reached fn -> caller fn
    std::map<int, std::string> entry_of;
    std::deque<int> queue;
    for (int i = 0; i < static_cast<int>(fns_.size()); ++i) {
      if (fn(i).hot_entry) {
        parent[i] = -1;
        entry_of[i] = label_of(fn(i));
        queue.push_back(i);
        ++result_.stats.hot_entries;
      }
    }
    std::size_t edges = 0;
    while (!queue.empty()) {
      const int cur = queue.front();
      queue.pop_front();
      for (const CallSite& cs : fn(cur).calls) {
        for (int callee : resolve_call(cur, cs.chain)) {
          ++edges;
          if (parent.count(callee)) continue;
          parent[callee] = cur;
          entry_of[callee] = entry_of[cur];
          queue.push_back(callee);
        }
      }
    }
    result_.stats.call_edges = edges;

    auto via = [&](int fid) {
      std::vector<std::string> chain;
      for (int i = fid; i != -1; i = parent[i]) chain.push_back(label_of(fn(i)));
      std::reverse(chain.begin(), chain.end());
      std::string out;
      for (const std::string& c : chain) {
        if (!out.empty()) out += " -> ";
        out += c;
      }
      return out;
    };

    for (const auto& [fid, par] : parent) {
      const FileModel& file = file_of(fid);
      const std::string path = via(fid);
      if (!file.hot_file) {
        // In SNNSEC_HOT-marked files lint's per-file R1 already owns
        // allocation findings; A1 covers the unmarked remainder.
        for (const Effect& e : fn(fid).allocs) {
          report(file, e.line, "hot-path-alloc",
                 "allocation (" + e.what + ") on hot path: " + path,
                 "hoist the allocation out of the hot path or take scratch "
                 "from util::Workspace",
                 "snnsec-hot-alloc");
        }
      }
      for (const LockAcq& acq : fn(fid).acquisitions) {
        report(file, acq.line, "hot-path-lock",
               "mutex acquisition (" + canonical_mutex(fid, acq.mutex_expr) +
                   ") on hot path: " + path,
               "restructure so the hot path reads published state without "
               "taking the lock, or justify with a NOLINT");
      }
      for (const Effect& e : fn(fid).ios) {
        report(file, e.line, "hot-path-io",
               "I/O (" + e.what + ") on hot path: " + path,
               "buffer the output and flush it off the hot path");
      }
      for (const WaitSite& w : fn(fid).waits) {
        if (w.what == "sleep")
          report(file, w.line, "hot-path-io",
                 "blocking sleep on hot path: " + path,
                 "hot paths must not sleep; move the backoff to the caller");
      }
    }
  }

  // --- A2: lock-order discipline -------------------------------------------

  struct EdgeSite {
    std::string file;
    int line = 0;
  };

  void a2_lock_order() {
    // Per-function transitive acquire summaries (fixpoint over calls).
    std::vector<std::set<std::string>> acquire(fns_.size());
    std::vector<std::vector<std::vector<int>>> callees(fns_.size());
    for (int i = 0; i < static_cast<int>(fns_.size()); ++i) {
      for (const LockAcq& a : fn(i).acquisitions)
        acquire[i].insert(canonical_mutex(i, a.mutex_expr));
      callees[i].reserve(fn(i).calls.size());
      for (const CallSite& cs : fn(i).calls)
        callees[i].push_back(resolve_call(i, cs.chain));
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (int i = 0; i < static_cast<int>(fns_.size()); ++i) {
        for (const auto& cands : callees[i]) {
          for (int c : cands) {
            for (const std::string& m : acquire[c])
              if (acquire[i].insert(m).second) changed = true;
          }
        }
      }
    }

    // Edges: held -> acquired, both intra (guard nesting) and inter (call
    // with a lock held into a function that acquires).
    std::map<std::string, std::map<std::string, EdgeSite>> edges;
    std::set<std::string> nodes;
    auto add_edge = [&](const std::string& from, const std::string& to,
                        const std::string& file, int line) {
      if (from == to) return;
      nodes.insert(from);
      nodes.insert(to);
      edges[from].emplace(to, EdgeSite{file, line});
    };
    for (int i = 0; i < static_cast<int>(fns_.size()); ++i) {
      const FileModel& file = file_of(i);
      for (const LockAcq& a : fn(i).acquisitions) {
        const std::string to = canonical_mutex(i, a.mutex_expr);
        nodes.insert(to);
        for (const std::string& h : a.held)
          add_edge(canonical_mutex(i, h), to, file.path, a.line);
      }
      for (std::size_t ci = 0; ci < fn(i).calls.size(); ++ci) {
        const CallSite& cs = fn(i).calls[ci];
        if (cs.held.empty()) continue;
        for (int c : callees[i][ci]) {
          for (const std::string& m : acquire[c]) {
            for (const std::string& h : cs.held)
              add_edge(canonical_mutex(i, h), m, file.path, cs.line);
          }
        }
      }
    }
    result_.stats.mutexes.assign(nodes.begin(), nodes.end());
    for (const auto& [from, tos] : edges)
      for (const auto& [to, site] : tos)
        result_.stats.lock_edges.push_back(
            {from, to, site.file + ":" + std::to_string(site.line)});

    // Cycles: for each edge a->b, shortest path b ~> a closes a cycle.
    std::set<std::string> seen_cycles;
    for (const auto& [a, tos] : edges) {
      for (const auto& [b, site] : tos) {
        // BFS from b back to a.
        std::map<std::string, std::string> prev;
        std::deque<std::string> q{b};
        prev[b] = "";
        bool found = false;
        while (!q.empty() && !found) {
          const std::string cur = q.front();
          q.pop_front();
          auto it = edges.find(cur);
          if (it == edges.end()) continue;
          for (const auto& [next, _] : it->second) {
            if (prev.count(next)) continue;
            prev[next] = cur;
            if (next == a) { found = true; break; }
            q.push_back(next);
          }
        }
        if (!found) continue;
        std::vector<std::string> cycle;  // a -> b -> ... -> a
        for (std::string n = a; !n.empty(); n = prev[n]) {
          cycle.push_back(n);
          if (n == b) break;
        }
        std::reverse(cycle.begin(), cycle.end());  // now a, b, ..., back to a
        // Canonical rotation for dedupe.
        std::vector<std::string> rot = cycle;
        std::rotate(rot.begin(),
                    std::min_element(rot.begin(), rot.end()), rot.end());
        std::string canon;
        for (const std::string& n : rot) canon += n + "|";
        if (!seen_cycles.insert(canon).second) continue;
        std::string text;
        for (const std::string& n : cycle) text += n + " -> ";
        text += a;
        const FileModel* file = nullptr;
        for (const FileModel& m : models_)
          if (m.path == site.file) file = &m;
        if (file == nullptr) continue;
        report(*file, site.line, "lock-cycle",
               "lock-order cycle: " + text + " (" + b + " acquired here while " +
                   a + " is held)",
               "establish a global acquisition order and release " + a +
                   " before taking " + b);
      }
    }

    // Locks held across blocking points, intra- and inter-procedurally.
    std::vector<bool> blocking(fns_.size(), false);
    for (int i = 0; i < static_cast<int>(fns_.size()); ++i)
      blocking[i] = !fn(i).waits.empty();
    for (bool changed = true; changed;) {
      changed = false;
      for (int i = 0; i < static_cast<int>(fns_.size()); ++i) {
        if (blocking[i]) continue;
        for (const auto& cands : callees[i])
          for (int c : cands)
            if (blocking[c]) { blocking[i] = true; changed = true; }
      }
    }
    auto held_csv = [&](int fid, const std::vector<std::string>& held) {
      std::string out;
      for (const std::string& h : held) {
        if (!out.empty()) out += ", ";
        out += canonical_mutex(fid, h);
      }
      return out;
    };
    for (int i = 0; i < static_cast<int>(fns_.size()); ++i) {
      const FileModel& file = file_of(i);
      for (const WaitSite& w : fn(i).waits) {
        if (w.held.empty()) continue;
        report(file, w.line, "lock-across-wait",
               "blocking point (" + w.what + ") reached while holding " +
                   held_csv(i, w.held),
               "release the lock before blocking, or bound the wait");
      }
      for (std::size_t ci = 0; ci < fn(i).calls.size(); ++ci) {
        const CallSite& cs = fn(i).calls[ci];
        if (cs.held.empty()) continue;
        for (int c : callees[i][ci]) {
          if (!blocking[c]) continue;
          report(file, cs.line, "lock-across-wait",
                 "call to blocking function " + label_of(fn(c)) +
                     " while holding " + held_csv(i, cs.held),
                 "release the lock before the call, or split the callee so "
                 "the blocking part runs unlocked");
          break;
        }
      }
    }
  }

  // --- A3: mixed-access members and relaxed flag atomics --------------------

  void a3_concurrency() {
    struct Access {
      std::string type;
      std::vector<std::pair<const FileModel*, int>> locked;
      std::vector<std::pair<const FileModel*, int>> bare;
    };
    std::map<std::string, Access> members;  // "Cls::field"
    for (int i = 0; i < static_cast<int>(fns_.size()); ++i) {
      const FileModel& file = file_of(i);
      const FunctionInfo& f = fn(i);
      // Constructor/destructor bodies run before publication / after the
      // last reader; their writes never race.
      const std::size_t col = f.cls.rfind(':');
      const std::string cls_last =
          col == std::string::npos ? f.cls : f.cls.substr(col + 1);
      const bool ctor_dtor =
          !f.cls.empty() && (f.name == cls_last || f.name == "~" + cls_last);
      for (const WriteSite& w : f.writes) {
        if (ctor_dtor) break;
        std::string declaring, type, name;
        const std::size_t dot = w.chain.find('.');
        if (dot == std::string::npos) {
          name = w.chain;
          bool local = false;
          for (const auto& [pn, pt] : f.params) local |= pn == name;
          for (const auto& [ln, lt] : f.locals) local |= ln == name;
          for (const std::string& lm : f.local_mutexes) local |= lm == name;
          if (local) continue;
          std::tie(declaring, type) = member_lookup(f.cls, name);
        } else {
          const std::string base = w.chain.substr(0, dot);
          name = w.chain.substr(dot + 1);
          // Writes through a parameter go to a caller-owned object (the
          // fill-this-output-struct idiom) — ownership is contextual there,
          // so only `this` members and reference locals (which alias shared
          // state) participate in the mixed-guard analysis.
          bool via_param = false;
          for (const auto& [pn, pt] : f.params) via_param |= pn == base;
          if (via_param) continue;
          const std::string cls = type_to_class(base_type_of(i, base));
          if (cls.empty()) continue;
          std::tie(declaring, type) = member_lookup(cls, name);
        }
        if (declaring.empty()) continue;
        const std::string lt = to_lower(type);
        if (lt.find("atomic") != std::string::npos ||
            lt.find("mutex") != std::string::npos ||
            lt.find("condition_variable") != std::string::npos)
          continue;
        Access& acc = members[declaring + "::" + name];
        acc.type = type;
        (w.locked ? acc.locked : acc.bare).emplace_back(&file, w.line);
      }
      for (const Effect& e : f.relaxed) {
        const std::string leaf = to_lower(last_component(e.what));
        static const std::array<std::string_view, 10> flagish = {
            "stop", "done", "flag", "state",  "ready",
            "busy", "deposed", "failed", "enabled", "stopped"};
        bool hit = false;
        for (std::string_view tok : flagish)
          if (leaf.find(tok) != std::string::npos) hit = true;
        if (!hit) continue;
        report(file, e.line, "relaxed-atomic",
               "memory_order_relaxed on flag-like atomic `" + e.what +
                   "`: relaxed ordering publishes no prior writes",
               "use acquire/release (or the seq_cst default) unless this is a "
               "pure counter");
      }
    }
    for (const auto& [key, acc] : members) {
      if (acc.locked.empty() || acc.bare.empty()) continue;
      for (const auto& [file, line] : acc.bare) {
        report(*file, line, "mixed-guard",
               "field " + key + " (" + acc.type + ") is written both under a "
               "lock (" + acc.locked.front().first->path + ":" +
                   std::to_string(acc.locked.front().second) +
                   ") and bare here",
               "take the same lock here, make the field atomic, or justify "
               "the publication protocol with a NOLINT");
      }
    }
  }

  // --- A4: metric/trace string registry ------------------------------------

  void a4_metric_registry() {
    std::map<std::string, std::vector<std::pair<const FileModel*, int>>> names;
    for (const FileModel& m : models_)
      for (const MetricUse& use : m.metrics)
        names[use.name].emplace_back(&m, use.line);
    for (const auto& [name, sites] : names)
      result_.stats.metric_names.push_back(name);

    // Near-miss pairs: edit distance exactly 1 — almost certainly a typo'd
    // variant of the same series. Report at the rarer name's sites.
    std::vector<std::string> sorted;
    for (const auto& [name, sites] : names) sorted.push_back(name);
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      for (std::size_t j = i + 1; j < sorted.size(); ++j) {
        if (edit_distance_capped(sorted[i], sorted[j], 1) != 1) continue;
        const auto& a = names[sorted[i]];
        const auto& b = names[sorted[j]];
        const bool a_rarer = a.size() <= b.size();
        const std::string& rare = a_rarer ? sorted[i] : sorted[j];
        const std::string& common = a_rarer ? sorted[j] : sorted[i];
        for (const auto& [file, line] : names[rare]) {
          report(*file, line, "metric-near-miss",
                 "metric name \"" + rare + "\" is one edit from \"" + common +
                     "\" (" + std::to_string(names[common].size()) +
                     " use(s)); split series are invisible on dashboards",
                 "rename to \"" + common + "\" or pick a clearly distinct "
                 "name");
        }
      }
    }

    if (opts_.design_source.empty()) return;
    for (const auto& [name, sites] : names) {
      if (opts_.design_source.find(name) != std::string::npos) continue;
      const auto& [file, line] = sites.front();
      report(*file, line, "metric-undocumented",
             "metric name \"" + name + "\" is not documented in DESIGN.md",
             "add \"" + name + "\" to the metric-name registry table in "
             "DESIGN.md §15");
    }
  }

  // --- layering + include cycles -------------------------------------------

  void layering() {
    struct LayerRule {
      std::string_view from_dir;
      std::vector<std::string_view> banned;
    };
    static const std::vector<LayerRule> rules = {
        {"src/util/", {"nn/", "snn/", "serve/", "obs/", "tensor/"}},
        {"src/tensor/", {"serve/"}},
    };
    for (const FileModel& m : models_) {
      for (const LayerRule& rule : rules) {
        if (m.path.find(rule.from_dir) == std::string::npos) continue;
        for (const IncludeDecl& inc : m.includes) {
          for (std::string_view banned : rule.banned) {
            if (inc.path.compare(0, banned.size(), banned) != 0) continue;
            report(m, inc.line, "layering",
                   std::string(rule.from_dir) + " must not include " +
                       inc.path + " (inverted layer dependency)",
                   "invert the dependency with a hook/interface in the lower "
                   "layer (see util/metrics_hooks.hpp)");
          }
        }
      }
    }

    // Include cycles among files we have models for. Include paths are
    // src-relative ("util/error.hpp"); map them onto model paths.
    std::map<std::string, const FileModel*> by_suffix;
    for (const FileModel& m : models_) by_suffix["/" + m.path] = &m;
    auto resolve_include = [&](const std::string& inc) -> const FileModel* {
      for (const auto& [suffix, m] : by_suffix) {
        const std::string want = "/src/" + inc;
        if (suffix.size() >= want.size() &&
            suffix.compare(suffix.size() - want.size(), want.size(), want) ==
                0)
          return m;
      }
      return nullptr;
    };
    std::map<const FileModel*, std::vector<std::pair<const FileModel*, int>>>
        graph;
    for (const FileModel& m : models_)
      for (const IncludeDecl& inc : m.includes)
        if (const FileModel* target = resolve_include(inc.path))
          graph[&m].emplace_back(target, inc.line);
    // DFS cycle detection with path reporting.
    std::map<const FileModel*, int> state;  // 0 new, 1 on stack, 2 done
    std::vector<const FileModel*> stack;
    std::set<std::string> seen;
    std::function<void(const FileModel*)> dfs = [&](const FileModel* node) {
      state[node] = 1;
      stack.push_back(node);
      for (const auto& [next, line] : graph[node]) {
        if (state[next] == 1) {
          // Found a cycle: stack from `next` to `node`.
          auto it = std::find(stack.begin(), stack.end(), next);
          std::vector<std::string> cyc;
          for (; it != stack.end(); ++it) cyc.push_back((*it)->path);
          std::vector<std::string> rot = cyc;
          std::rotate(rot.begin(),
                      std::min_element(rot.begin(), rot.end()), rot.end());
          std::string canon;
          for (const std::string& p : rot) canon += p + "|";
          if (seen.insert(canon).second) {
            std::string text;
            for (const std::string& p : cyc) text += p + " -> ";
            text += cyc.front();
            report(*node, line, "include-cycle",
                   "include cycle: " + text,
                   "break the cycle with a forward declaration or by moving "
                   "shared types to a lower-layer header");
          }
        } else if (state[next] == 0) {
          dfs(next);
        }
      }
      stack.pop_back();
      state[node] = 2;
    };
    for (const FileModel& m : models_)
      if (state[&m] == 0) dfs(&m);
  }

  void finish() {
    std::sort(result_.findings.begin(), result_.findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    std::sort(result_.stats.metric_names.begin(),
              result_.stats.metric_names.end());
  }
};

}  // namespace

const std::vector<std::string_view>& rule_ids() {
  static const std::vector<std::string_view> ids = {
      "hot-path-alloc",     "hot-path-lock",   "hot-path-io",
      "lock-cycle",         "lock-across-wait", "mixed-guard",
      "relaxed-atomic",     "metric-near-miss", "metric-undocumented",
      "layering",           "include-cycle",    "nolint-justification"};
  return ids;
}

AnalyzeResult analyze(const std::vector<FileModel>& models,
                      const Options& opts) {
  return Analyzer(models, opts).run();
}

}  // namespace snnsec::analyze
