// snnsec_analyze CLI: build per-TU semantic models (cached by content
// digest) and run the whole-program analyses over them.
//
// Usage:
//   snnsec_analyze [--root DIR] [--design FILE] [--cache FILE] [--json FILE]
//                  [--require-mutexes CSV] [--suggest] [--verbose]
//                  [--list-rules] [dirs...]
//
// With no positional dirs, scans src/ under --root. --design FILE enables the
// metric-undocumented rule against that file's text. --require-mutexes CSV
// exits 2 unless every named canonical mutex appears in the lock-order model
// (guards against the extractor silently losing coverage). --json FILE writes
// findings and the lock-order model as JSON for CI artifacts.
// Exit status: 0 clean, 1 findings, 2 usage/IO/coverage errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "cache.hpp"
#include "source_view.hpp"

namespace fs = std::filesystem;
using snnsec::analyze::AnalyzeResult;
using snnsec::analyze::FileModel;
using snnsec::analyze::Finding;
using snnsec::analyze::Options;

namespace {

std::string read_file_or_empty(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_usage() {
  std::cout <<
      "snnsec_analyze [--root DIR] [--design FILE] [--cache FILE] "
      "[--json FILE] [--require-mutexes CSV] [--suggest] [--verbose] "
      "[--list-rules] [dirs...]\n"
      "  Flow-aware analysis of dirs (default: src): hot-path reachability,\n"
      "  lock-order discipline, concurrency heuristics, metric-name "
      "registry.\n"
      "  Suppress a line with `// NOLINT(snnsec-<rule>): <justification>`.\n";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool write_json(const std::string& path, const AnalyzeResult& res) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\n  \"findings\": [\n";
  for (std::size_t i = 0; i < res.findings.size(); ++i) {
    const Finding& f = res.findings[i];
    out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << json_escape(f.rule)
        << "\", \"message\": \"" << json_escape(f.message) << "\"}"
        << (i + 1 < res.findings.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"suppressed\": " << res.suppressed.size()
      << ",\n  \"stats\": {\n    \"functions\": " << res.stats.functions
      << ",\n    \"hot_entries\": " << res.stats.hot_entries
      << ",\n    \"call_edges\": " << res.stats.call_edges
      << ",\n    \"mutexes\": [";
  for (std::size_t i = 0; i < res.stats.mutexes.size(); ++i)
    out << (i ? ", " : "") << "\"" << json_escape(res.stats.mutexes[i])
        << "\"";
  out << "],\n    \"lock_edges\": [\n";
  for (std::size_t i = 0; i < res.stats.lock_edges.size(); ++i) {
    const auto& e = res.stats.lock_edges[i];
    out << "      {\"from\": \"" << json_escape(e.from) << "\", \"to\": \""
        << json_escape(e.to) << "\", \"site\": \"" << json_escape(e.site)
        << "\"}" << (i + 1 < res.stats.lock_edges.size() ? "," : "") << "\n";
  }
  out << "    ],\n    \"metric_names\": [";
  for (std::size_t i = 0; i < res.stats.metric_names.size(); ++i)
    out << (i ? ", " : "") << "\""
        << json_escape(res.stats.metric_names[i]) << "\"";
  out << "]\n  }\n}\n";
  return static_cast<bool>(out);
}

std::vector<std::string> split_csv_arg(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string cache_path, design_path, json_path, require_mutexes;
  std::vector<std::string> dirs;
  bool suggest = false, verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--design" && i + 1 < argc) {
      design_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--require-mutexes" && i + 1 < argc) {
      require_mutexes = argv[++i];
    } else if (arg == "--suggest") {
      suggest = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-rules") {
      for (const auto id : snnsec::analyze::rule_ids())
        std::cout << "snnsec-" << id << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "snnsec_analyze: unknown option " << arg << "\n";
      print_usage();
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src"};

  Options opts;
  if (!design_path.empty()) {
    opts.design_source = read_file_or_empty(fs::path(root) / design_path);
    if (opts.design_source.empty()) {
      std::cerr << "snnsec_analyze: cannot read design file " << design_path
                << "\n";
      return 2;
    }
  }

  snnsec::lint::FileCache cache(
      cache_path, std::string(snnsec::analyze::analyze_cache_version()));

  std::vector<FileModel> models;
  std::size_t files = 0;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) {
      std::cerr << "snnsec_analyze: no such directory: " << base.string()
                << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string path = entry.path().generic_string();
      if (!snnsec::lint::lintable_file(path)) continue;
      ++files;
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << "snnsec_analyze: cannot read " << path << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string content = buf.str();
      const std::uint64_t digest = snnsec::lint::fnv1a(content);
      FileModel model;
      bool cached = false;
      if (const auto payload = cache.lookup(path, digest))
        cached = snnsec::analyze::deserialize_model(*payload, path, model);
      if (!cached) {
        model = snnsec::analyze::extract_model(path, content);
        cache.store(path, digest, snnsec::analyze::serialize_model(model));
      }
      models.push_back(std::move(model));
    }
  }
  if (!cache.save())
    std::cerr << "snnsec_analyze: warning: could not write cache "
              << cache_path << "\n";

  const AnalyzeResult res = snnsec::analyze::analyze(models, opts);

  for (const Finding& f : res.findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
    if (suggest && !f.suggestion.empty())
      std::cout << "    fix: " << f.suggestion << "\n";
  }

  if (!json_path.empty() && !write_json(json_path, res)) {
    std::cerr << "snnsec_analyze: cannot write " << json_path << "\n";
    return 2;
  }

  int status = res.findings.empty() ? 0 : 1;
  if (!require_mutexes.empty()) {
    for (const std::string& want : split_csv_arg(require_mutexes)) {
      if (std::find(res.stats.mutexes.begin(), res.stats.mutexes.end(),
                    want) == res.stats.mutexes.end()) {
        std::cerr << "snnsec_analyze: required mutex \"" << want
                  << "\" missing from the lock-order model — extractor "
                  "coverage regressed\n";
        status = 2;
      }
    }
  }

  if (verbose) {
    std::cout << "snnsec_analyze: cache " << cache.hits() << " hit(s), "
              << cache.misses() << " miss(es)\n";
    std::cout << "snnsec_analyze: model: " << res.stats.functions
              << " functions, " << res.stats.hot_entries << " hot entries, "
              << res.stats.call_edges << " call edges, "
              << res.stats.mutexes.size() << " mutexes, "
              << res.stats.lock_edges.size() << " lock edges, "
              << res.stats.metric_names.size() << " metric names\n";
    for (const auto& e : res.stats.lock_edges)
      std::cout << "  lock-edge " << e.from << " -> " << e.to << " @ "
                << e.site << "\n";
  }
  std::cout << "snnsec_analyze: " << files << " files, "
            << res.findings.size() << " finding(s), " << res.suppressed.size()
            << " justified suppression(s)\n";
  return status;
}
