// snnsec_analyze: flow-aware static analysis for the snnsec tree.
//
// Where snnsec_lint checks line-local invariants, this tool builds a
// lightweight semantic model per translation unit — function/method
// extraction, a name-resolution-lite call graph, and per-function effect
// summaries (allocates, locks which mutexes in which order, does I/O,
// blocks) — and runs whole-program analyses over it:
//
//   A1 hot-path reachability   functions reachable from a function-level
//      snnsec-hot-path-alloc   `// SNNSEC_HOT` entry marker inherit the
//      snnsec-hot-path-lock    no-allocation rule plus no-lock/no-I/O,
//      snnsec-hot-path-io      even in files without the file marker.
//   A2 lock-order discipline   acquisition-order graph over named mutexes;
//      snnsec-lock-cycle       cycles are potential deadlocks, and blocking
//      snnsec-lock-across-wait (CV waits, pool.submit/wait_idle, sleeps)
//                              while holding an unrelated lock is reported.
//   A3 concurrency heuristics  fields written both under a lock guard and
//      snnsec-mixed-guard      bare, and relaxed-ordering atomics whose
//      snnsec-relaxed-atomic   names suggest flag/state (non-counter) roles.
//   A4 string registry         serve.*/tensor.*/attack.*/pool.* metric and
//      snnsec-metric-near-miss trace-span literals: near-miss duplicates
//      snnsec-metric-undocumented and names missing from DESIGN.md.
//   L  include graph           inverted layer edges (src/util must not
//      snnsec-layering         include nn/snn/serve/obs/tensor; src/tensor
//      snnsec-include-cycle    must not include serve) and include cycles.
//
// Suppression contract is identical to snnsec_lint's:
// `// NOLINT(snnsec-<rule>): <justification>` on the offending line or
// NOLINTNEXTLINE on the line before; unjustified snnsec NOLINTs are
// themselves findings. A1 allocation findings additionally honor justified
// `snnsec-hot-alloc` suppressions — a line exempted from the per-file rule
// is exempt from the reachability rule for the same reason.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"  // Finding

namespace snnsec::analyze {

using lint::Finding;

// ---------------------------------------------------------------------------
// Per-TU semantic model. Everything here is derivable from the file's bytes
// alone (no cross-file knowledge), which is what makes it cacheable by
// content digest; resolution against other TUs happens in analyze().
// ---------------------------------------------------------------------------

/// A named effect at a source line (allocation, I/O, ...).
struct Effect {
  int line = 0;
  std::string what;
};

/// A mutex acquisition with the set of mutex expressions already held.
struct LockAcq {
  int line = 0;
  std::string mutex_expr;         ///< as written: "m_", "s.m", "pool.mutex_"
  std::vector<std::string> held;  ///< exprs held when this one is acquired
};

/// A blocking point: CV wait, pool submit/wait_idle, or a sleep.
struct WaitSite {
  int line = 0;
  std::string what;          ///< "cv.wait", "submit", "wait_idle", "sleep"
  std::string released;      ///< mutex expr a CV wait releases ("" otherwise)
  std::vector<std::string> held;
};

/// A call site with the enclosing held-lock set.
struct CallSite {
  int line = 0;
  std::string chain;  ///< "helper", "batcher_.release", "obs::Tracer::record"
  std::vector<std::string> held;
};

/// A plain (non-atomic-qualified) assignment to a shallow member-ish chain.
struct WriteSite {
  int line = 0;
  std::string chain;   ///< "done_", "s.done" — depth <= 2
  bool locked = false;  ///< any lock held at the write
};

struct FunctionInfo {
  std::string name;  ///< last identifier ("finalize", "operator()")
  std::string cls;   ///< class path ("Server", "Server::Slot"), "" for free
  int line = 0;      ///< 1-based definition line
  bool hot_entry = false;  ///< function-level SNNSEC_HOT marker
  std::vector<std::pair<std::string, std::string>> params;  ///< name -> type
  std::vector<std::pair<std::string, std::string>> locals;  ///< ref/ptr decls
  std::vector<std::string> local_mutexes;  ///< function-local std::mutex names
  std::vector<Effect> allocs;
  std::vector<Effect> ios;
  std::vector<LockAcq> acquisitions;
  std::vector<WaitSite> waits;
  std::vector<CallSite> calls;
  std::vector<WriteSite> writes;
  std::vector<Effect> relaxed;  ///< memory_order_relaxed uses; what = object
};

struct MemberDecl {
  std::string name;
  std::string type;  ///< declared type text, normalized whitespace
};

struct ClassInfo {
  std::string path;  ///< "Server", "Server::Slot" (namespaces stripped)
  std::vector<MemberDecl> members;
};

struct IncludeDecl {
  int line = 0;
  std::string path;  ///< as written inside quotes ("util/error.hpp")
};

struct MetricUse {
  int line = 0;
  std::string name;  ///< the string literal ("serve.requests")
};

struct SuppressionLine {
  int line = 0;
  std::string rule;  ///< with the snnsec- prefix
  bool justified = false;
  bool next_line = false;
};

struct FileModel {
  std::string path;
  bool hot_file = false;  ///< any SNNSEC_HOT comment marker in the file
  std::vector<IncludeDecl> includes;
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;
  std::vector<MetricUse> metrics;
  std::vector<SuppressionLine> suppressions;
};

/// Parse one translation unit into its semantic model.
FileModel extract_model(const std::string& path, const std::string& content);

/// FileCache payload round-trip; deserialize returns false on malformed
/// payloads (treat as a cache miss). Bump analyze_cache_version() whenever
/// the model shape or the extraction rules change.
std::string serialize_model(const FileModel& model);
bool deserialize_model(const std::string& payload, const std::string& path,
                       FileModel& out);
std::string_view analyze_cache_version();

// ---------------------------------------------------------------------------
// Whole-program analysis.
// ---------------------------------------------------------------------------

struct Options {
  /// Contents of DESIGN.md; when non-empty, A4 requires every collected
  /// metric/span name to appear in it (snnsec-metric-undocumented).
  std::string design_source;
};

struct LockEdge {
  std::string from;  ///< canonical mutex held
  std::string to;    ///< canonical mutex acquired under it
  std::string site;  ///< "file:line" of the acquisition or call
};

struct Stats {
  std::size_t functions = 0;
  std::size_t hot_entries = 0;
  std::size_t call_edges = 0;
  std::vector<std::string> mutexes;    ///< canonical lock-order model nodes
  std::vector<LockEdge> lock_edges;    ///< acquisition-order edges
  std::vector<std::string> metric_names;
};

struct AnalyzeResult {
  std::vector<Finding> findings;
  std::vector<Finding> suppressed;
  Stats stats;
};

AnalyzeResult analyze(const std::vector<FileModel>& models,
                      const Options& opts = {});

/// All stable rule IDs (without the "snnsec-" prefix), for --list-rules.
const std::vector<std::string_view>& rule_ids();

}  // namespace snnsec::analyze
