// Per-TU model extraction for snnsec_analyze.
//
// The extractor is a single forward scan over the stripped code view (string
// literals and comments blanked, so nothing inside them can look like code).
// It is name-resolution-lite by design: no templates are instantiated, no
// overloads resolved. What it recovers — function boundaries, class member
// tables, lock-guard scopes, call chains, writes — is exactly the vocabulary
// the whole-program analyses in analyze.cpp need, and nothing more.
#include "analyze.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "source_view.hpp"

namespace snnsec::analyze {

namespace {

using lint::contains_word;
using lint::find_word;
using lint::ident_char;

constexpr char kFieldSep = '\x1f';

// --- small string helpers --------------------------------------------------

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Collapse runs of whitespace to single spaces (member type normalization).
std::string squeeze(std::string_view s) {
  std::string out;
  bool in_ws = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_ws = true;
      continue;
    }
    if (in_ws && !out.empty()) out.push_back(' ');
    in_ws = false;
    out.push_back(c);
  }
  return out;
}

bool is_keyword(std::string_view w) {
  static const std::array<std::string_view, 22> kw = {
      "if",     "for",      "while",  "switch",   "catch",    "return",
      "do",     "else",     "new",    "delete",   "throw",    "sizeof",
      "case",   "default",  "goto",   "co_await", "co_yield", "co_return",
      "static_assert",      "alignas", "alignof", "decltype"};
  return std::find(kw.begin(), kw.end(), w) != kw.end();
}

/// Last identifier in a string ("Server::finalize" -> "finalize").
std::string last_ident(std::string_view s) {
  std::size_t e = s.size();
  while (e > 0 && !ident_char(s[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return std::string(s.substr(b, e - b));
}

// --- joined code view with line mapping ------------------------------------

/// The scanner works over one flat string; `line_of` maps an offset back to
/// the 1-based source line for findings and effect records.
struct FlatView {
  std::string text;
  std::vector<int> line_at;  ///< line_at[i] = 1-based line of text[i]

  int line_of(std::size_t pos) const {
    if (pos >= line_at.size()) return line_at.empty() ? 1 : line_at.back();
    return line_at[pos];
  }
};

FlatView flatten(const std::vector<std::string>& code) {
  FlatView flat;
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (char c : code[i]) {
      flat.text.push_back(c);
      flat.line_at.push_back(static_cast<int>(i) + 1);
    }
    flat.text.push_back('\n');
    flat.line_at.push_back(static_cast<int>(i) + 1);
  }
  return flat;
}

// --- token scanning over the flat view -------------------------------------

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

std::size_t prev_nonspace(const std::string& s, std::size_t i) {
  while (i > 0) {
    --i;
    if (!std::isspace(static_cast<unsigned char>(s[i]))) return i;
  }
  return std::string::npos;
}

std::string read_ident(const std::string& s, std::size_t i) {
  std::size_t e = i;
  while (e < s.size() && ident_char(s[e])) ++e;
  return s.substr(i, e - i);
}

/// Read a member/call chain forward from an identifier start:
/// ident((::|.|->)ident)*. Returns the chain text and the end offset.
std::pair<std::string, std::size_t> read_chain(const std::string& s,
                                               std::size_t i) {
  std::string chain;
  std::size_t pos = i;
  for (;;) {
    std::string id = read_ident(s, pos);
    if (id.empty()) break;
    chain += id;
    pos += id.size();
    std::size_t j = skip_ws(s, pos);
    if (j + 1 < s.size() && s[j] == ':' && s[j + 1] == ':') {
      chain += "::";
      pos = j + 2;
    } else if (j + 1 < s.size() && s[j] == '.' && ident_char(s[j + 1]) &&
               !std::isdigit(static_cast<unsigned char>(s[j + 1]))) {
      chain += ".";
      pos = j + 1;
    } else if (j + 2 < s.size() && s[j] == '-' && s[j + 1] == '>' &&
               j + 2 < s.size() && ident_char(s[j + 2])) {
      chain += ".";
      pos = j + 2;
    } else {
      pos = j;
      break;
    }
  }
  return {chain, pos};
}

/// Find the matching close bracket for the open bracket at `i` (which must be
/// one of ( [ {). Returns npos if unbalanced.
std::size_t match_bracket(const std::string& s, std::size_t i) {
  const char open = s[i];
  const char close = open == '(' ? ')' : open == '[' ? ']' : '}';
  int depth = 0;
  for (std::size_t j = i; j < s.size(); ++j) {
    if (s[j] == open) ++depth;
    else if (s[j] == close && --depth == 0) return j;
  }
  return std::string::npos;
}

/// Split a bracketed argument list (text between parens, exclusive) at
/// top-level commas.
std::vector<std::string> split_args(std::string_view inner) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < inner.size(); ++i) {
    const char c = inner[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    else if (c == ',' && depth <= 0) {
      out.push_back(trim(inner.substr(start, i - start)));
      start = i + 1;
    }
  }
  std::string tail = trim(inner.substr(start));
  if (!tail.empty() || !out.empty()) out.push_back(std::move(tail));
  return out;
}

// --- function-header parsing -----------------------------------------------

/// Find the first '(' in `header` that sits at top level with respect to
/// template angle brackets. Heuristic angle tracking: '<' after an identifier
/// char opens a template list; '>' closes one unless it follows '-'.
std::size_t first_toplevel_paren(const std::string& header, std::size_t from) {
  int angle = 0;
  for (std::size_t i = from; i < header.size(); ++i) {
    const char c = header[i];
    if (c == '<' && i > 0 && (ident_char(header[i - 1]) || header[i - 1] == ' '))
      ++angle;
    else if (c == '>' && angle > 0 && (i == 0 || header[i - 1] != '-'))
      --angle;
    else if (c == '(' && angle == 0)
      return i;
  }
  return std::string::npos;
}

struct HeaderParse {
  bool ok = false;
  std::string name;  ///< unqualified
  std::string qual;  ///< explicit "A::B" qualifier, "" if none
  std::vector<std::pair<std::string, std::string>> params;  ///< name -> type
};

/// Try to parse `header` (all accumulated text since the last ; { } boundary,
/// code view, single line via squeeze) as a function definition header whose
/// body '{' follows. Handles qualifiers, attribute macros before the name,
/// ctor-initializers, trailing return types.
HeaderParse parse_function_header(const std::string& raw_header) {
  HeaderParse hp;
  const std::string header = squeeze(raw_header);
  if (header.empty()) return hp;

  std::size_t search = 0;
  while (true) {
    const std::size_t paren = first_toplevel_paren(header, search);
    if (paren == std::string::npos) return hp;
    const std::size_t close = match_bracket(header, paren);
    if (close == std::string::npos) return hp;
    search = paren + 1;  // next candidate on failure

    // The token just before '(' must be an identifier (the function name) or
    // an operator spelling.
    std::size_t name_end = paren;
    while (name_end > 0 &&
           std::isspace(static_cast<unsigned char>(header[name_end - 1])))
      --name_end;
    if (name_end == 0) continue;
    std::string name, qual;
    if (ident_char(header[name_end - 1])) {
      std::size_t name_begin = name_end;
      while (name_begin > 0 && ident_char(header[name_begin - 1])) --name_begin;
      name = header.substr(name_begin, name_end - name_begin);
      if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])))
        continue;
      if (is_keyword(name)) continue;
      if (name_begin > 0 && header[name_begin - 1] == '~') {
        name = "~" + name;
        --name_begin;
      }
      // Explicit qualification: A::B::name
      std::size_t q = name_begin;
      while (q >= 2 && header[q - 1] == ':' && header[q - 2] == ':') {
        std::size_t seg_end = q - 2;
        std::size_t seg_begin = seg_end;
        while (seg_begin > 0 && (ident_char(header[seg_begin - 1]) ||
                                 header[seg_begin - 1] == '~'))
          --seg_begin;
        if (seg_begin == seg_end) break;
        qual = header.substr(seg_begin, seg_end - seg_begin) +
               (qual.empty() ? "" : "::" + qual);
        q = seg_begin;
      }
      // Reject declarations/statements: a top-level '=' before the name means
      // this is an initializer (e.g. `auto f = [...](...)`), handled as a
      // lambda inside the enclosing function, or a global we don't model.
      const std::size_t eq = header.find('=');
      if (eq != std::string::npos && eq < paren &&
          (eq + 1 >= header.size() || header[eq + 1] != '=') &&
          (eq == 0 || (header[eq - 1] != '!' && header[eq - 1] != '<' &&
                       header[eq - 1] != '>' && header[eq - 1] != '=')))
        continue;
      // Reject control-flow keywords that own the parens.
      bool keyworded = false;
      for (std::string_view kw :
           {"if", "for", "while", "switch", "catch", "return"}) {
        if (name == kw) keyworded = true;
      }
      if (keyworded) continue;
    } else {
      // operator overload: scan back for the "operator" keyword.
      const std::size_t op = header.rfind("operator", name_end);
      if (op == std::string::npos) continue;
      const std::string sym = trim(header.substr(op + 8, name_end - op - 8));
      if (sym.size() > 3) continue;
      name = "operator" + sym;
    }

    // Validate everything after ')': qualifiers, trailing return, ctor-init,
    // or nothing. Anything else means this '(' was not the parameter list.
    std::string after = trim(header.substr(close + 1));
    bool valid = true;
    while (valid && !after.empty()) {
      if (after[0] == ':' || after.compare(0, 2, "->") == 0) break;  // accept
      bool matched = false;
      for (std::string_view q2 : {"const", "noexcept", "override", "final",
                                  "mutable", "try", "&&", "&", "-> "}) {
        if (after.compare(0, q2.size(), q2) == 0) {
          after = trim(after.substr(q2.size()));
          if (q2 == "noexcept" && !after.empty() && after[0] == '(') {
            const std::size_t nc = match_bracket(after, 0);
            if (nc == std::string::npos) { valid = false; break; }
            after = trim(after.substr(nc + 1));
          }
          matched = true;
          break;
        }
      }
      if (!matched) valid = false;
    }
    if (!valid) continue;

    hp.ok = true;
    hp.name = name;
    hp.qual = qual;
    for (const std::string& arg :
         split_args(std::string_view(header).substr(paren + 1, close - paren - 1))) {
      if (arg.empty() || arg == "void") continue;
      // Strip default argument.
      std::string a = arg;
      int depth = 0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const char c = a[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        else if (c == '=' && depth == 0) { a = trim(a.substr(0, i)); break; }
      }
      const std::string pname = last_ident(a);
      if (pname.empty() || is_keyword(pname)) continue;
      const std::size_t name_pos = a.rfind(pname);
      if (name_pos == std::string::npos) continue;
      const std::string ptype = squeeze(a.substr(0, name_pos));
      if (ptype.empty()) continue;  // unnamed or type-only param
      hp.params.emplace_back(pname, ptype);
    }
    return hp;
  }
}

// --- body scanning ---------------------------------------------------------

bool lock_guard_type(std::string_view id) {
  return id == "lock_guard" || id == "unique_lock" || id == "scoped_lock" ||
         id == "shared_lock";
}

struct Guard {
  std::string var;
  std::vector<std::string> mutexes;
  int depth = 0;
  bool active = true;
};

bool is_io_token(std::string_view id) {
  static const std::array<std::string_view, 13> io = {
      "cout",  "cerr",  "clog",  "printf",   "fprintf", "puts",   "fputs",
      "fopen", "fwrite", "fread", "ofstream", "ifstream", "fstream"};
  return std::find(io.begin(), io.end(), id) != io.end();
}

bool alloc_method(std::string_view id) {
  static const std::array<std::string_view, 7> m = {
      "resize", "reserve", "push_back", "emplace_back", "assign", "push",
      "emplace"};
  return std::find(m.begin(), m.end(), id) != m.end();
}

bool write_op_at(const std::string& s, std::size_t i) {
  // =, +=, -=, *=, /=, |=, &=, ^= — but not ==, <=, >=, !=.
  if (i >= s.size()) return false;
  if (s[i] == '=') {
    if (i + 1 < s.size() && s[i + 1] == '=') return false;
    if (i > 0 && (s[i - 1] == '=' || s[i - 1] == '!' || s[i - 1] == '<' ||
                  s[i - 1] == '>'))
      return false;
    return true;
  }
  if (i + 1 < s.size() && s[i + 1] == '=' &&
      (s[i] == '+' || s[i] == '-' || s[i] == '*' || s[i] == '/' ||
       s[i] == '|' || s[i] == '&' || s[i] == '^'))
    return true;
  return false;
}

class Extractor {
 public:
  Extractor(const std::string& path, const lint::SourceView& view)
      : path_(path), view_(view), flat_(flatten(view.code)) {}

  FileModel run() {
    FileModel model;
    model.path = path_;
    collect_file_level(model);
    scan(model);
    return model;
  }

 private:
  const std::string& path_;
  const lint::SourceView& view_;
  FlatView flat_;

  // Scope stack entries: namespaces are transparent (not recorded); classes
  // contribute to the class path.
  std::vector<std::string> class_stack_;
  std::vector<ClassInfo>* classes_ = nullptr;

  void collect_file_level(FileModel& model) {
    // Hot-file marker, includes, metric uses, suppressions: all per-line.
    for (std::size_t i = 0; i < view_.comments.size(); ++i) {
      if (contains_word(view_.comments[i], "SNNSEC_HOT")) model.hot_file = true;
      for (const lint::Suppression& sup :
           lint::parse_suppressions(view_.comments[i])) {
        for (const std::string& rule : sup.rules) {
          SuppressionLine sl;
          sl.line = static_cast<int>(i) + 1;
          sl.rule = rule;
          sl.justified = sup.justified;
          sl.next_line = sup.next_line;
          model.suppressions.push_back(std::move(sl));
        }
      }
    }
    for (std::size_t i = 0; i < view_.raw.size(); ++i) {
      const std::string& raw = view_.raw[i];
      // Includes must come from the raw view: the code view blanks the path.
      std::size_t h = raw.find('#');
      if (h != std::string::npos) {
        std::size_t j = skip_ws(raw, h + 1);
        if (raw.compare(j, 7, "include") == 0) {
          j = skip_ws(raw, j + 7);
          if (j < raw.size() && raw[j] == '"') {
            const std::size_t end = raw.find('"', j + 1);
            if (end != std::string::npos) {
              IncludeDecl inc;
              inc.line = static_cast<int>(i) + 1;
              inc.path = raw.substr(j + 1, end - j - 1);
              model.includes.push_back(std::move(inc));
            }
          }
        }
      }
      // Metric/trace name literals: only on lines whose *code* view carries an
      // emission token, so arbitrary strings elsewhere are never collected.
      const std::string& code = i < view_.code.size() ? view_.code[i] : raw;
      static const std::array<std::string_view, 11> emitters = {
          "SNNSEC_COUNTER_ADD", "SNNSEC_GAUGE_SET", "SNNSEC_GAUGE_ADD",
          "SNNSEC_HISTOGRAM_OBSERVE", "SNNSEC_TRACE_SCOPE", "counter_add",
          "gauge_set", "histogram_observe", "counter", "gauge", "histogram"};
      bool emits = false;
      for (std::string_view tok : emitters)
        if (contains_word(code, tok)) { emits = true; break; }
      if (!emits) continue;
      std::size_t pos = 0;
      while ((pos = raw.find('"', pos)) != std::string::npos) {
        const std::size_t end = raw.find('"', pos + 1);
        if (end == std::string::npos) break;
        const std::string lit = raw.substr(pos + 1, end - pos - 1);
        pos = end + 1;
        if (metric_name(lit)) {
          MetricUse use;
          use.line = static_cast<int>(i) + 1;
          use.name = lit;
          model.metrics.push_back(std::move(use));
        }
      }
    }
  }

  static bool metric_name(std::string_view lit) {
    static const std::array<std::string_view, 5> prefixes = {
        "serve.", "tensor.", "attack.", "pool.", "fleet."};
    bool prefixed = false;
    for (std::string_view p : prefixes)
      if (lit.size() > p.size() && lit.compare(0, p.size(), p) == 0)
        prefixed = true;
    if (!prefixed) return false;
    for (char c : lit) {
      if (!(std::islower(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.'))
        return false;
    }
    return true;
  }

  // --- top-level structural scan -------------------------------------------

  void scan(FileModel& model) {
    classes_ = &model.classes;
    const std::string& s = flat_.text;
    std::string header;       ///< accumulated text since last boundary
    std::size_t header_line = 0;  ///< flat offset where header started
    std::size_t i = 0;
    // Brace kinds on the structural stack.
    enum class Brace { kNamespace, kClass, kBlock };
    std::vector<Brace> braces;

    while (i < s.size()) {
      const char c = s[i];
      if (c == '#' && at_line_start(s, i)) {
        // Preprocessor line (with continuations) — not part of any header.
        while (i < s.size() && s[i] != '\n') {
          if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') ++i;
          ++i;
        }
        continue;
      }
      if (c == ';') {
        if (!braces.empty() && braces.back() == Brace::kClass)
          record_member(header);
        header.clear();
        header_line = i + 1;
        ++i;
        continue;
      }
      if (c == '}') {
        if (!braces.empty()) {
          if (braces.back() == Brace::kClass && !class_stack_.empty())
            class_stack_.pop_back();
          braces.pop_back();
        }
        header.clear();
        header_line = i + 1;
        ++i;
        continue;
      }
      if (c == '{') {
        const std::string sq = squeeze(header);
        if (contains_word(sq, "namespace")) {
          braces.push_back(Brace::kNamespace);
          header.clear();
          header_line = i + 1;
          ++i;
          continue;
        }
        if (contains_word(sq, "enum")) {
          // enum bodies carry no code we model; fast-forward.
          const std::size_t close = match_bracket(s, i);
          i = close == std::string::npos ? s.size() : close + 1;
          header.clear();
          header_line = i;
          continue;
        }
        HeaderParse hp = parse_function_header(header);
        if (hp.ok) {
          FunctionInfo fn;
          fn.name = hp.name;
          fn.cls = !hp.qual.empty() ? hp.qual : join_class_stack();
          fn.line = flat_.line_of(first_code_offset(header_line, i));
          fn.params = std::move(hp.params);
          fn.hot_entry = hot_entry_at(fn.line);
          const std::size_t close = match_bracket(s, i);
          const std::size_t body_end =
              close == std::string::npos ? s.size() : close;
          scan_body(s, i + 1, body_end, fn);
          model.functions.push_back(std::move(fn));
          i = body_end < s.size() ? body_end + 1 : s.size();
          header.clear();
          header_line = i;
          continue;
        }
        if ((contains_word(sq, "class") || contains_word(sq, "struct") ||
             contains_word(sq, "union")) &&
            sq.find('(') == std::string::npos) {
          std::string cname = class_name_from_header(sq);
          if (!cname.empty()) {
            class_stack_.push_back(cname);
            ClassInfo info;
            info.path = join_class_stack();
            classes_->push_back(std::move(info));
            braces.push_back(Brace::kClass);
            header.clear();
            header_line = i + 1;
            ++i;
            continue;
          }
        }
        // Anything else outside a function: an initializer brace, an array,
        // a lambda in a global init. Fast-forward to the matching '}' and
        // keep it inside the header as "{}" so the boundary logic stays
        // consistent (member `std::atomic<int> x{0};` still parses).
        const std::size_t close = match_bracket(s, i);
        header += "{}";
        i = close == std::string::npos ? s.size() : close + 1;
        continue;
      }
      header.push_back(c);
      ++i;
    }
  }

  static bool at_line_start(const std::string& s, std::size_t i) {
    while (i > 0) {
      --i;
      if (s[i] == '\n') return true;
      if (!std::isspace(static_cast<unsigned char>(s[i]))) return false;
    }
    return true;
  }

  std::size_t first_code_offset(std::size_t from, std::size_t to) const {
    const std::string& s = flat_.text;
    for (std::size_t i = from; i < to; ++i)
      if (!std::isspace(static_cast<unsigned char>(s[i]))) return i;
    return to;
  }

  std::string join_class_stack() const {
    std::string out;
    for (const std::string& c : class_stack_) {
      if (!out.empty()) out += "::";
      out += c;
    }
    return out;
  }

  static std::string class_name_from_header(const std::string& sq) {
    // Name = identifier after the last class/struct/union keyword, skipping
    // attribute-ish ALL_CAPS macros, stopping before ':' (bases) or "final".
    std::size_t pos = std::string::npos;
    for (std::string_view kw : {"class", "struct", "union"}) {
      const std::size_t p = find_word(sq, kw);
      if (p != std::string::npos && (pos == std::string::npos || p > pos))
        pos = p + kw.size();
    }
    if (pos == std::string::npos) return "";
    std::string name;
    std::size_t i = pos;
    while (i < sq.size()) {
      i = skip_ws(sq, i);
      std::string id = read_ident(sq, i);
      if (id.empty()) break;
      if (id == "final") break;
      name = id;
      i += id.size();
      if (i < sq.size() && sq[i] == ':') break;
    }
    return name;
  }

  bool hot_entry_at(int line) const {
    // Function-level marker: a SNNSEC_HOT comment on the definition line or
    // within 3 lines above it — but never line 1, which is the file-level
    // marker convention.
    for (int l = line; l >= std::max(2, line - 3); --l) {
      const std::size_t idx = static_cast<std::size_t>(l) - 1;
      if (idx < view_.comments.size() &&
          contains_word(view_.comments[idx], "SNNSEC_HOT"))
        return true;
    }
    return false;
  }

  // --- member declarations (class scope, at ';') ---------------------------

  void record_member(const std::string& header) {
    // Target the ClassInfo for the *current* class path: after a nested class
    // closes, later members belong to the enclosing class again, not to
    // whatever was pushed last.
    const std::string path = join_class_stack();
    ClassInfo* target = nullptr;
    for (auto it = classes_->rbegin(); it != classes_->rend(); ++it) {
      if (it->path == path) {
        target = &*it;
        break;
      }
    }
    if (target == nullptr) return;
    std::string sq = squeeze(header);
    // Strip access labels anywhere in the accumulated header.
    for (std::string_view label : {"public :", "private :", "protected :",
                                   "public:", "private:", "protected:"}) {
      std::size_t p;
      while ((p = sq.find(label)) != std::string::npos)
        sq.erase(p, label.size());
    }
    sq = trim(sq);
    if (sq.empty()) return;
    for (std::string_view skip : {"using", "typedef", "friend", "static_assert",
                                  "template", "enum", "class", "struct"}) {
      if (sq.compare(0, skip.size(), skip) == 0 &&
          (sq.size() == skip.size() || !ident_char(sq[skip.size()])))
        return;
    }
    // A top-level '(' before any '=' means a function declaration, not a
    // data member ("void f() const;").
    const std::size_t paren = first_toplevel_paren(sq, 0);
    std::size_t eq = std::string::npos;
    {
      int depth = 0;
      for (std::size_t i = 0; i < sq.size(); ++i) {
        const char c = sq[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        else if (c == '=' && depth == 0 &&
                 (i + 1 >= sq.size() || sq[i + 1] != '=')) {
          eq = i;
          break;
        }
      }
    }
    if (paren != std::string::npos && (eq == std::string::npos || paren < eq))
      return;
    std::string decl = eq == std::string::npos ? sq : trim(sq.substr(0, eq));
    // Brace initializer remnants ("{}") from the structural fast-forward.
    const std::size_t brace = decl.find('{');
    if (brace != std::string::npos) decl = trim(decl.substr(0, brace));
    const std::string name = last_ident(decl);
    if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])))
      return;
    if (is_keyword(name)) return;
    std::string type = squeeze(decl.substr(0, decl.rfind(name)));
    if (type.empty()) return;
    MemberDecl m;
    m.name = name;
    m.type = std::move(type);
    target->members.push_back(std::move(m));
  }

  // --- function-body scan --------------------------------------------------

  void scan_body(const std::string& s, std::size_t begin, std::size_t end,
                 FunctionInfo& fn) {
    std::vector<Guard> guards;
    int depth = 1;
    std::size_t i = begin;
    auto held = [&guards]() {
      std::vector<std::string> out;
      for (const Guard& g : guards)
        if (g.active)
          for (const std::string& m : g.mutexes) out.push_back(m);
      return out;
    };

    while (i < end) {
      const char c = s[i];
      if (c == '#' && at_line_start(s, i)) {
        while (i < end && s[i] != '\n') {
          if (s[i] == '\\' && i + 1 < end && s[i + 1] == '\n') ++i;
          ++i;
        }
        continue;
      }
      if (c == '{') { ++depth; ++i; continue; }
      if (c == '}') {
        --depth;
        // Guards declared inside the block that just closed die with it;
        // guards declared at the now-current depth stay live.
        while (!guards.empty() && guards.back().depth > depth)
          guards.pop_back();
        ++i;
        if (depth == 0) break;
        continue;
      }
      if (!ident_char(c) || (i > 0 && ident_char(s[i - 1]))) { ++i; continue; }

      const int line = flat_.line_of(i);
      // Declaration filter: a chain whose previous non-space char is an
      // identifier char, '>', '&' or '*' is the declared name, not a use —
      // unless that identifier is a value-context keyword (`else f();`,
      // `return f();`), which introduces an expression, not a declarator.
      const std::size_t prev = prev_nonspace(s, i);
      bool declared =
          prev != std::string::npos &&
          (ident_char(s[prev]) || s[prev] == '>' || s[prev] == '&' ||
           s[prev] == '*');
      if (declared && ident_char(s[prev])) {
        std::size_t w = prev;
        while (w > 0 && ident_char(s[w - 1])) --w;
        const std::string pw = s.substr(w, prev - w + 1);
        if (pw == "else" || pw == "return" || pw == "throw" ||
            pw == "case" || pw == "do" || pw == "co_return" ||
            pw == "co_await" || pw == "co_yield")
          declared = false;
      }

      auto [chain, after] = read_chain(s, i);
      if (chain.empty()) { ++i; continue; }
      const std::string head = chain.substr(0, chain.find_first_of(".:"));
      std::string tail = last_ident(chain);

      // -- allocation / io / new --
      if (chain == "new" || head == "new") {
        fn.allocs.push_back({line, "new"});
        i = after;
        continue;
      }
      if (!declared && (chain == "malloc" || chain == "calloc" ||
                        chain == "realloc" || chain == "std::malloc")) {
        if (after < end && s[skip_ws(s, after)] == '(')
          fn.allocs.push_back({line, last_ident(chain)});
        i = after;
        continue;
      }

      // -- lock guard declarations --
      if (lock_guard_type(tail) &&
          (head == "std" || lock_guard_type(head))) {
        i = handle_guard_decl(s, after, end, depth, guards, fn, line);
        continue;
      }

      // -- local std::mutex --
      if ((chain == "std::mutex" || chain == "mutex") && !declared) {
        const std::size_t j = skip_ws(s, after);
        const std::string var = read_ident(s, j);
        if (!var.empty() && !is_keyword(var)) {
          const std::size_t k = skip_ws(s, j + var.size());
          if (k < end && (s[k] == ';' || s[k] == '{'))
            fn.local_mutexes.push_back(var);
        }
        i = after;
        continue;
      }

      // -- reference/pointer locals: Type& name = ... / Type* name = ... --
      if (!declared && after < end) {
        const std::size_t j = skip_ws(s, after);
        if (j < end && (s[j] == '&' || s[j] == '*')) {
          std::size_t k = skip_ws(s, j + 1);
          const std::string var = read_ident(s, k);
          if (!var.empty() && !is_keyword(var) && chain.find('.') == std::string::npos) {
            const std::size_t m = skip_ws(s, k + var.size());
            // '=' is an initialized local; ';'/'{' covers reference/pointer
            // members of function-local structs (InFlightGuard-style).
            if (m < end && (s[m] == '=' || s[m] == ';' || s[m] == '{'))
              fn.locals.emplace_back(var, chain);
          }
        }
      }

      const std::size_t call_paren = skip_ws(s, after);
      const bool is_call = call_paren < end && s[call_paren] == '(';

      // -- explicit unlock()/lock() on a guard variable --
      if (is_call && (tail == "unlock" || tail == "lock") &&
          chain.find('.') != std::string::npos) {
        const std::string base = chain.substr(0, chain.rfind('.'));
        bool was_guard = false;
        for (Guard& g : guards)
          if (g.var == base) {
            g.active = (tail == "lock");
            was_guard = true;
          }
        if (was_guard) {
          i = after;
          continue;
        }
      }

      // -- waits / blocking sites --
      if (is_call &&
          (tail == "wait" || tail == "wait_for" || tail == "wait_until") &&
          chain.find('.') != std::string::npos) {
        WaitSite w;
        w.line = line;
        w.what = "cv.wait";
        const std::size_t close = match_bracket(s, call_paren);
        if (close != std::string::npos) {
          const auto args =
              split_args(std::string_view(s).substr(call_paren + 1,
                                                    close - call_paren - 1));
          if (!args.empty()) {
            const std::string lock_var = last_ident(
                args[0].substr(0, args[0].find_first_of(".([")));
            for (const Guard& g : guards)
              if (g.var == lock_var && !g.mutexes.empty())
                w.released = g.mutexes.front();
            if (w.released.empty()) {
              const std::string lv = args[0];
              for (const Guard& g : guards)
                if (g.var == lv && !g.mutexes.empty())
                  w.released = g.mutexes.front();
            }
          }
        }
        std::vector<std::string> h = held();
        if (!w.released.empty())
          h.erase(std::remove(h.begin(), h.end(), w.released), h.end());
        w.held = std::move(h);
        fn.waits.push_back(std::move(w));
        i = close_or(after, s, call_paren);
        continue;
      }
      if (is_call && (tail == "submit" || tail == "wait_idle") &&
          chain != "submit" && chain.find('.') != std::string::npos) {
        fn.waits.push_back({line, std::string(tail), "", held()});
        // fall through to also record the call edge below
      }
      if (is_call && (tail == "sleep_for" || tail == "sleep_until" ||
                      chain == "sleep_for_ms" ||
                      chain == "util::sleep_for_ms")) {
        fn.waits.push_back({line, "sleep", "", held()});
      }

      // -- relaxed atomics --
      if (is_call &&
          (tail == "load" || tail == "store" || tail == "exchange" ||
           tail.compare(0, 6, "fetch_") == 0 ||
           tail.compare(0, 17, "compare_exchange_") == 0)) {
        const std::size_t close = match_bracket(s, call_paren);
        if (close != std::string::npos) {
          const std::string_view args =
              std::string_view(s).substr(call_paren, close - call_paren + 1);
          if (args.find("memory_order_relaxed") != std::string_view::npos) {
            std::string obj = chain;
            const std::size_t dot = obj.rfind('.');
            if (dot != std::string::npos) obj = obj.substr(0, dot);
            fn.relaxed.push_back({line, obj});
          }
        }
      }

      // -- I/O --
      if (is_io_token(tail) && (head == "std" || head == tail)) {
        fn.ios.push_back({line, std::string(tail)});
        i = after;
        continue;
      }

      // -- container growth (alloc methods on an object) --
      if (is_call && alloc_method(tail) && chain.find('.') != std::string::npos) {
        fn.allocs.push_back({line, chain});
      }

      // -- call sites --
      if (is_call && !declared && !is_keyword(chain) &&
          !lock_guard_type(tail)) {
        CallSite cs;
        cs.line = line;
        cs.chain = chain;
        if (cs.chain.compare(0, 6, "this->") == 0 ||
            cs.chain.compare(0, 5, "this.") == 0)
          cs.chain = cs.chain.substr(cs.chain.find('.') + 1);
        cs.held = held();
        fn.calls.push_back(std::move(cs));
        i = after;
        continue;
      }

      // -- writes (shallow member-ish chains) --
      if (!declared && !is_call) {
        std::string wchain = chain;
        if (wchain.compare(0, 5, "this.") == 0) wchain = wchain.substr(5);
        const int dots =
            static_cast<int>(std::count(wchain.begin(), wchain.end(), '.'));
        if (dots <= 1 && wchain.find(':') == std::string::npos) {
          std::size_t j = skip_ws(s, after);
          // Skip [index] subscripts before the operator.
          while (j < end && s[j] == '[') {
            const std::size_t cb = match_bracket(s, j);
            if (cb == std::string::npos) break;
            j = skip_ws(s, cb + 1);
          }
          bool wrote = false;
          if (j < end && write_op_at(s, j)) wrote = true;
          if (j + 1 < end && ((s[j] == '+' && s[j + 1] == '+') ||
                              (s[j] == '-' && s[j + 1] == '-')))
            wrote = true;
          // Pre-increment: ++x / --x.
          if (!wrote && prev != std::string::npos && prev >= 1 &&
              ((s[prev] == '+' && s[prev - 1] == '+') ||
               (s[prev] == '-' && s[prev - 1] == '-')))
            wrote = true;
          if (wrote) {
            WriteSite w;
            w.chain = std::move(wchain);
            w.line = line;
            w.locked = !held().empty();
            fn.writes.push_back(std::move(w));
          }
        }
      }
      i = after > i ? after : i + 1;
    }
  }

  static std::size_t close_or(std::size_t fallback, const std::string& s,
                              std::size_t paren) {
    const std::size_t close = match_bracket(s, paren);
    return close == std::string::npos ? fallback : close + 1;
  }

  std::size_t handle_guard_decl(const std::string& s, std::size_t after,
                                std::size_t end, int depth,
                                std::vector<Guard>& guards, FunctionInfo& fn,
                                int line) {
    std::size_t i = skip_ws(s, after);
    // Optional template argument list (std::lock_guard<std::mutex>).
    if (i < end && s[i] == '<') {
      int angle = 0;
      while (i < end) {
        if (s[i] == '<') ++angle;
        else if (s[i] == '>' && --angle == 0) { ++i; break; }
        ++i;
      }
      i = skip_ws(s, i);
    }
    const std::string var = read_ident(s, i);
    if (var.empty()) return i;
    i = skip_ws(s, i + var.size());
    Guard g;
    g.var = var;
    g.depth = depth;
    if (i < end && (s[i] == '(' || s[i] == '{')) {
      const std::size_t close = match_bracket(s, i);
      if (close != std::string::npos) {
        for (std::string arg : split_args(
                 std::string_view(s).substr(i + 1, close - i - 1))) {
          // Tag arguments and non-mutex-ish args are filtered; defer_lock
          // means not held until .lock().
          if (arg.find("defer_lock") != std::string::npos) {
            g.active = false;
            continue;
          }
          if (arg.find("try_to_lock") != std::string::npos ||
              arg.find("adopt_lock") != std::string::npos)
            continue;
          if (arg.empty()) continue;
          std::string clean;
          for (char c : arg)
            if (c != '*' && c != '&' && !std::isspace(static_cast<unsigned char>(c)))
              clean.push_back(c);
          if (clean.compare(0, 6, "this->") == 0) clean = clean.substr(6);
          // Normalize p->m to p.m so resolution sees one spelling.
          std::size_t arrow;
          while ((arrow = clean.find("->")) != std::string::npos)
            clean.replace(arrow, 2, ".");
          if (clean.empty()) continue;
          g.mutexes.push_back(std::move(clean));
        }
        i = close + 1;
      }
    }
    if (!g.mutexes.empty()) {
      // Record the acquisition(s) with the currently-held set.
      std::vector<std::string> h;
      for (const Guard& og : guards)
        if (og.active)
          for (const std::string& m : og.mutexes) h.push_back(m);
      for (const std::string& m : g.mutexes) {
        LockAcq acq;
        acq.line = line;
        acq.mutex_expr = m;
        acq.held = h;
        fn.acquisitions.push_back(std::move(acq));
        if (g.active) h.push_back(m);  // scoped_lock(a, b): a held when b taken
      }
      guards.push_back(std::move(g));
    }
    return i;
  }
};

// --- serialization ---------------------------------------------------------

void put(std::string& out, std::string_view field) {
  out.append(field);
  out.push_back(kFieldSep);
}

void put_csv(std::string& out, const std::vector<std::string>& items) {
  std::string csv;
  for (const std::string& it : items) {
    if (!csv.empty()) csv.push_back(',');
    csv += it;
  }
  put(out, csv);
}

std::vector<std::string> split_csv(std::string_view csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string_view piece =
        csv.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                          : comma - start);
    if (!piece.empty()) out.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> split_fields(std::string_view rec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= rec.size(); ++i) {
    if (i == rec.size() || rec[i] == kFieldSep) {
      out.emplace_back(rec.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool to_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  int v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

}  // namespace

FileModel extract_model(const std::string& path, const std::string& content) {
  const lint::SourceView view = lint::strip(content);
  return Extractor(path, view).run();
}

std::string_view analyze_cache_version() { return "analyze-v1"; }

std::string serialize_model(const FileModel& model) {
  std::string out;
  auto rec = [&out](char tag) -> std::string& {
    out.push_back(tag);
    out.push_back(kFieldSep);
    return out;
  };
  if (model.hot_file) {
    rec('H');
    out.push_back('\n');
  }
  for (const IncludeDecl& inc : model.includes) {
    rec('I');
    put(out, std::to_string(inc.line));
    put(out, inc.path);
    out.push_back('\n');
  }
  for (const ClassInfo& cls : model.classes) {
    rec('C');
    put(out, cls.path);
    out.push_back('\n');
    for (const MemberDecl& m : cls.members) {
      rec('M');
      put(out, m.name);
      put(out, m.type);
      out.push_back('\n');
    }
  }
  for (const MetricUse& use : model.metrics) {
    rec('U');
    put(out, std::to_string(use.line));
    put(out, use.name);
    out.push_back('\n');
  }
  for (const SuppressionLine& sup : model.suppressions) {
    rec('S');
    put(out, std::to_string(sup.line));
    put(out, sup.rule);
    put(out, sup.justified ? "1" : "0");
    put(out, sup.next_line ? "1" : "0");
    out.push_back('\n');
  }
  for (const FunctionInfo& fn : model.functions) {
    rec('F');
    put(out, fn.name);
    put(out, fn.cls);
    put(out, std::to_string(fn.line));
    put(out, fn.hot_entry ? "1" : "0");
    out.push_back('\n');
    for (const auto& [name, type] : fn.params) {
      rec('p');
      put(out, name);
      put(out, type);
      out.push_back('\n');
    }
    for (const auto& [name, type] : fn.locals) {
      rec('l');
      put(out, name);
      put(out, type);
      out.push_back('\n');
    }
    for (const std::string& m : fn.local_mutexes) {
      rec('x');
      put(out, m);
      out.push_back('\n');
    }
    for (const Effect& e : fn.allocs) {
      rec('a');
      put(out, std::to_string(e.line));
      put(out, e.what);
      out.push_back('\n');
    }
    for (const Effect& e : fn.ios) {
      rec('o');
      put(out, std::to_string(e.line));
      put(out, e.what);
      out.push_back('\n');
    }
    for (const LockAcq& acq : fn.acquisitions) {
      rec('q');
      put(out, std::to_string(acq.line));
      put(out, acq.mutex_expr);
      put_csv(out, acq.held);
      out.push_back('\n');
    }
    for (const WaitSite& w : fn.waits) {
      rec('w');
      put(out, std::to_string(w.line));
      put(out, w.what);
      put(out, w.released);
      put_csv(out, w.held);
      out.push_back('\n');
    }
    for (const CallSite& cs : fn.calls) {
      rec('g');
      put(out, std::to_string(cs.line));
      put(out, cs.chain);
      put_csv(out, cs.held);
      out.push_back('\n');
    }
    for (const WriteSite& w : fn.writes) {
      rec('v');
      put(out, std::to_string(w.line));
      put(out, w.chain);
      put(out, w.locked ? "1" : "0");
      out.push_back('\n');
    }
    for (const Effect& e : fn.relaxed) {
      rec('r');
      put(out, std::to_string(e.line));
      put(out, e.what);
      out.push_back('\n');
    }
  }
  return out;
}

bool deserialize_model(const std::string& payload, const std::string& path,
                       FileModel& out) {
  out = FileModel{};
  out.path = path;
  ClassInfo* cls = nullptr;
  FunctionInfo* fn = nullptr;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) nl = payload.size();
    const std::string_view recv(payload.data() + pos, nl - pos);
    pos = nl + 1;
    if (recv.empty()) continue;
    const char tag = recv[0];
    if (recv.size() < 2 || recv[1] != kFieldSep) return false;
    std::vector<std::string> f = split_fields(recv.substr(2));
    // split_fields on "x\x1f" yields {"x",""} — trailing empty is the record
    // terminator each put() appends.
    if (!f.empty() && f.back().empty()) f.pop_back();
    int line = 0;
    switch (tag) {
      case 'H':
        out.hot_file = true;
        break;
      case 'I':
        if (f.size() != 2 || !to_int(f[0], line)) return false;
        out.includes.push_back({line, f[1]});
        break;
      case 'C':
        if (f.size() != 1) return false;
        out.classes.push_back({f[0], {}});
        cls = &out.classes.back();
        break;
      case 'M':
        if (f.size() != 2 || cls == nullptr) return false;
        cls->members.push_back({f[0], f[1]});
        break;
      case 'U':
        if (f.size() != 2 || !to_int(f[0], line)) return false;
        out.metrics.push_back({line, f[1]});
        break;
      case 'S': {
        if (f.size() != 4 || !to_int(f[0], line)) return false;
        SuppressionLine sl;
        sl.line = line;
        sl.rule = f[1];
        sl.justified = f[2] == "1";
        sl.next_line = f[3] == "1";
        out.suppressions.push_back(std::move(sl));
        break;
      }
      case 'F': {
        if (f.size() != 4 || !to_int(f[2], line)) return false;
        FunctionInfo info;
        info.name = f[0];
        info.cls = f[1];
        info.line = line;
        info.hot_entry = f[3] == "1";
        out.functions.push_back(std::move(info));
        fn = &out.functions.back();
        break;
      }
      case 'p':
        if (f.size() != 2 || fn == nullptr) return false;
        fn->params.emplace_back(f[0], f[1]);
        break;
      case 'l':
        if (f.size() != 2 || fn == nullptr) return false;
        fn->locals.emplace_back(f[0], f[1]);
        break;
      case 'x':
        if (f.size() != 1 || fn == nullptr) return false;
        fn->local_mutexes.push_back(f[0]);
        break;
      case 'a':
        if (f.size() != 2 || fn == nullptr || !to_int(f[0], line)) return false;
        fn->allocs.push_back({line, f[1]});
        break;
      case 'o':
        if (f.size() != 2 || fn == nullptr || !to_int(f[0], line)) return false;
        fn->ios.push_back({line, f[1]});
        break;
      case 'q': {
        if (f.size() != 3 || fn == nullptr || !to_int(f[0], line)) return false;
        LockAcq acq;
        acq.line = line;
        acq.mutex_expr = f[1];
        acq.held = split_csv(f[2]);
        fn->acquisitions.push_back(std::move(acq));
        break;
      }
      case 'w': {
        if (f.size() != 4 || fn == nullptr || !to_int(f[0], line)) return false;
        WaitSite w;
        w.line = line;
        w.what = f[1];
        w.released = f[2];
        w.held = split_csv(f[3]);
        fn->waits.push_back(std::move(w));
        break;
      }
      case 'g': {
        if (f.size() != 3 || fn == nullptr || !to_int(f[0], line)) return false;
        CallSite cs;
        cs.line = line;
        cs.chain = f[1];
        cs.held = split_csv(f[2]);
        fn->calls.push_back(std::move(cs));
        break;
      }
      case 'v': {
        if (f.size() != 3 || fn == nullptr || !to_int(f[0], line)) return false;
        WriteSite w;
        w.line = line;
        w.chain = f[1];
        w.locked = f[2] == "1";
        fn->writes.push_back(std::move(w));
        break;
      }
      case 'r':
        if (f.size() != 2 || fn == nullptr || !to_int(f[0], line)) return false;
        fn->relaxed.push_back({line, f[1]});
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace snnsec::analyze
