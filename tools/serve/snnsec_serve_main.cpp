// snnsec_serve: command-line front end for the src/serve inference runtime.
//
// Serves requests against a fingerprint-validated checkpoint through the
// batched, deadline-aware Server. Requests are read from --requests FILE or
// stdin, one per line:
//
//   <sample_index> [deadline_us] [max_steps]
//
// where sample_index selects an image from the task's test split (MNIST when
// MNIST_DIR is set, synthetic digits otherwise). Blank lines and lines
// starting with '#' are skipped. When the checkpoint does not exist yet, a
// small model is trained and saved there first, so
//
//   echo "0" | ./snnsec_serve --model /tmp/digits.snnm
//
// is a self-contained smoke run. --clients N replays the request list from
// N threads so the micro-batcher actually forms batches.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "obs/metrics.hpp"
#include "serve_common.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace snnsec;

struct Request {
  std::int64_t sample = 0;
  serve::RequestOptions opt;
};

struct Outcome {
  serve::InferResult result;
  std::int64_t sample = 0;
  bool accepted = false;
};

std::vector<Request> read_requests(std::istream& in, std::int64_t test_n) {
  std::vector<Request> reqs;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    Request r;
    if (!(fields >> r.sample)) {
      SNNSEC_FAIL("snnsec_serve: bad request line " << line_no << ": '"
                                                    << line << "'");
    }
    fields >> r.opt.deadline_us >> r.opt.max_steps;  // both optional
    SNNSEC_CHECK(r.sample >= 0 && r.sample < test_n,
                 "snnsec_serve: sample index " << r.sample << " on line "
                                              << line_no
                                              << " outside test split [0, "
                                              << test_n << ")");
    reqs.push_back(r);
  }
  return reqs;
}

/// Periodic obs::Registry snapshot exporter (--metrics-interval). Sleeps in
/// short slices so shutdown is prompt even with long intervals.
class MetricsExporter {
 public:
  explicit MetricsExporter(std::int64_t interval_ms) {
    if (interval_ms <= 0) return;
    thread_ = std::thread([this, interval_ms] {
      const auto slice = std::chrono::milliseconds(20);
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(interval_ms);
      while (!stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(slice);
        if (std::chrono::steady_clock::now() < next) continue;
        obs::Registry::instance().append_snapshot();
        next += std::chrono::milliseconds(interval_ms);
      }
    });
  }
  ~MetricsExporter() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("snnsec_serve",
                       "serve SNN inference requests from a checkpoint");
  auto& model_path = args.add_string("model", "serve_model.snnm",
                                     "checkpoint path (trained if missing)");
  auto& requests_path =
      args.add_string("requests", "", "request file; default reads stdin");
  auto& clients = args.add_int("clients", 1, "client threads replaying load");
  auto& workers = args.add_int("workers", 0, "resident workers; 0 = inline");
  auto& max_batch = args.add_int("max-batch", 8, "micro-batch size cap");
  auto& max_delay =
      args.add_int("max-delay-us", 1000, "micro-batch flush delay");
  auto& capacity = args.add_int("capacity", 64, "admission queue capacity");
  auto& min_steps =
      args.add_int("min-steps", 1, "deadline never truncates below this");
  auto& default_deadline = args.add_int(
      "default-deadline-us", 0, "deadline for requests that carry none");
  auto& train_n = args.add_int("train", 600, "fallback-training samples");
  auto& test_n = args.add_int("test", 200, "test-split samples");
  auto& image = args.add_int("image-size", 16, "input resolution");
  auto& time_steps =
      args.add_int("time-steps", 16, "time window T for fallback training");
  auto& v_th = args.add_double("vth", 1.0, "threshold for fallback training");
  auto& epochs = args.add_int("epochs", 2, "fallback-training epochs");
  auto& envelope_path = args.add_string(
      "envelope", "", "clean-traffic envelope (snnsec_calibrate); arms "
                      "online adversarial detection");
  auto& detect_policy = args.add_string(
      "detect-policy", "observe",
      "flagged requests: observe | reject | reroute (reroute only escalates "
      "behind the fleet router; standalone it behaves like observe)");
  auto& flag_threshold = args.add_double(
      "flag-threshold", 4.0, "anomaly z-score that flags a request");
  auto& supervise = args.add_flag(
      "supervise", "enable replica supervision (canaries, self-healing, "
                   "overload governor)");
  auto& canary_interval = args.add_int(
      "canary-interval-ms", 500, "ms between deep canary probes per replica");
  auto& heartbeat_timeout = args.add_int(
      "heartbeat-timeout-ms", 1000,
      "watchdog deposes a worker silent for this long; 0 disables");
  auto& max_respawns =
      args.add_int("max-respawns", 16, "respawn budget per worker context");
  auto& metrics_interval = args.add_int(
      "metrics-interval", 0,
      "ms between obs::Registry snapshots appended to the metrics sink; "
      "0 = final snapshot only");
  auto& metrics_file = args.add_string(
      "metrics-file", "", "JSONL metrics sink (default SNNSEC_METRICS_FILE)");
  auto& verbose = args.add_flag("verbose", "print one line per request");
  args.parse(argc, argv);

  // Reject nonsense thresholds at parse time, before any model is trained
  // or loaded: a negative threshold would flag every request.
  SNNSEC_CHECK(std::isfinite(flag_threshold) && flag_threshold >= 0.0,
               "snnsec_serve: --flag-threshold must be finite and >= 0, got "
                   << flag_threshold);

  if (!metrics_file.empty())
    obs::Registry::instance().set_sink_path(metrics_file);
  SNNSEC_CHECK(metrics_interval == 0 || obs::Registry::instance().has_sink(),
               "snnsec_serve: --metrics-interval needs a sink; pass "
               "--metrics-file or set SNNSEC_METRICS_FILE");
  MetricsExporter exporter(metrics_interval);

  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = test_n;
  dspec.image_size = image;
  const data::DataBundle bundle = data::load_digits(dspec);
  std::printf("data source: %s | test %s\n", bundle.source(),
              bundle.test.summary().c_str());

  if (!std::ifstream(model_path).good())
    tools::train_checkpoint(model_path, bundle, image, time_steps, v_th,
                            epochs);

  serve::ServerConfig scfg;
  scfg.model_path = model_path;
  scfg.workers = workers;
  scfg.batcher.max_batch = max_batch;
  scfg.batcher.max_delay_us = max_delay;
  scfg.batcher.capacity = capacity;
  scfg.min_steps = min_steps;
  scfg.default_deadline_us = default_deadline;
  scfg.envelope_path = envelope_path;
  if (detect_policy == "reject") {
    scfg.detect_policy = serve::DetectPolicy::kReject;
  } else if (detect_policy == "reroute") {
    scfg.detect_policy = serve::DetectPolicy::kReroute;
  } else {
    SNNSEC_CHECK(detect_policy == "observe",
                 "snnsec_serve: --detect-policy must be observe, reject or "
                 "reroute, got '" << detect_policy << "'");
  }
  scfg.flag_threshold = flag_threshold;
  scfg.supervisor.enabled = supervise;
  scfg.supervisor.canary_interval_ms = canary_interval;
  scfg.supervisor.heartbeat_timeout_ms = heartbeat_timeout;
  scfg.supervisor.max_respawns = max_respawns;
  serve::Server server(scfg);
  std::printf(
      "serving %s | T=%lld | workers=%lld (%s) | max_batch=%lld "
      "delay=%lldus capacity=%lld | detection %s | supervision %s\n",
      model_path.c_str(), static_cast<long long>(server.time_steps()),
      static_cast<long long>(server.worker_count()),
      server.worker_count() > 0 ? "resident" : "inline",
      static_cast<long long>(max_batch), static_cast<long long>(max_delay),
      static_cast<long long>(capacity),
      server.detector_ready() ? serve::to_string(scfg.detect_policy) : "off",
      server.supervisor() ? "on" : "off");

  std::vector<Request> requests;
  if (requests_path.empty()) {
    requests = read_requests(std::cin, test_n);
  } else {
    std::ifstream file(requests_path);
    SNNSEC_CHECK(file.good(),
                 "snnsec_serve: cannot open requests file " << requests_path);
    requests = read_requests(file, test_n);
  }
  if (requests.empty()) {
    std::printf("no requests; exiting\n");
    return 0;
  }

  // Replay: each client thread walks a strided partition of the request
  // list, so concurrent submissions can ride shared micro-batches.
  const std::int64_t num_clients =
      std::max<std::int64_t>(1, std::min<std::int64_t>(
                                    clients,
                                    static_cast<std::int64_t>(
                                        requests.size())));
  std::vector<Outcome> outcomes(requests.size());
  util::Stopwatch watch;
  std::vector<std::thread> pool;
  for (std::int64_t c = 0; c < num_clients; ++c) {
    pool.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < requests.size();
           i += static_cast<std::size_t>(num_clients)) {
        const Request& r = requests[i];
        Outcome& o = outcomes[i];
        o.sample = r.sample;
        const tensor::Tensor x =
            nn::slice_batch(bundle.test.images, r.sample, r.sample + 1);
        o.accepted = server.infer(x, r.opt, o.result);
      }
    });
  }
  for (auto& t : pool) t.join();
  const double wall_s = watch.seconds();

  std::int64_t correct = 0;
  std::int64_t answered = 0;
  std::int64_t truncated = 0;
  std::int64_t flagged = 0;
  std::int64_t latency_sum = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    const serve::InferResult& r = o.result;
    const std::int64_t label =
        bundle.test.labels[static_cast<std::size_t>(o.sample)];
    if (o.accepted) {
      ++answered;
      if (r.pred == label) ++correct;
      if (r.truncated) ++truncated;
      latency_sum += r.latency_us;
    }
    if (r.flagged) ++flagged;
    if (verbose) {
      char detect[64] = "";
      if (r.anomaly_score >= 0)
        std::snprintf(detect, sizeof(detect), " score=%.2f%s",
                      r.anomaly_score, r.flagged ? " FLAGGED" : "");
      std::printf("req %zu sample=%lld %s pred=%lld label=%lld steps=%lld/"
                  "%lld batch=%lld queue=%lldus latency=%lldus%s%s\n",
                  i, static_cast<long long>(o.sample),
                  serve::to_string(r.status), static_cast<long long>(r.pred),
                  static_cast<long long>(label),
                  static_cast<long long>(r.steps_used),
                  static_cast<long long>(r.time_steps),
                  static_cast<long long>(r.batch_size),
                  static_cast<long long>(r.queue_us),
                  static_cast<long long>(r.latency_us), detect,
                  r.error.empty() ? "" : (" " + r.error).c_str());
    }
  }

  const serve::ServerStats stats = server.stats();
  std::printf(
      "served %lld/%zu requests in %.3fs (%.1f req/s) | accuracy %.1f%% | "
      "truncated %lld | flagged %lld | shed %lld | errors %lld | batches "
      "%lld | mean latency %.0fus\n",
      static_cast<long long>(answered), outcomes.size(), wall_s,
      wall_s > 0 ? static_cast<double>(answered) / wall_s : 0.0,
      answered > 0 ? 100.0 * static_cast<double>(correct) /
                         static_cast<double>(answered)
                   : 0.0,
      static_cast<long long>(truncated), static_cast<long long>(flagged),
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.errors),
      static_cast<long long>(stats.batches),
      answered > 0 ? static_cast<double>(latency_sum) /
                         static_cast<double>(answered)
                   : 0.0);
  // One-line ServerStats dump: the server's own monotonic counters (the
  // replay tallies above count only this process's accepted requests).
  std::printf(
      "server stats: submitted=%lld completed=%lld shed=%lld errors=%lld "
      "truncated=%lld flagged=%lld batches=%lld quarantines=%lld "
      "respawns=%lld watchdog_trips=%lld retries=%lld rescues=%lld "
      "degraded=%lld\n",
      static_cast<long long>(stats.submitted),
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.errors),
      static_cast<long long>(stats.truncated),
      static_cast<long long>(stats.flagged),
      static_cast<long long>(stats.batches),
      static_cast<long long>(stats.quarantines),
      static_cast<long long>(stats.respawns),
      static_cast<long long>(stats.watchdog_trips),
      static_cast<long long>(stats.retries),
      static_cast<long long>(stats.rescues),
      static_cast<long long>(stats.degraded));
  server.stop();
  return stats.errors == 0 ? 0 : 1;
}
