// snnsec_calibrate: fit a clean-traffic ActivityEnvelope for a checkpoint.
//
// Replays clean training-split images through the same AnytimeRunner +
// SketchAccumulator pipeline the serve workers use, fits the per-feature
// activity bands and atomically writes the envelope next to the model:
//
//   ./snnsec_calibrate --model digits.snnm --out digits.envelope
//   ./snnsec_serve --model digits.snnm --envelope digits.envelope ...
//
// The envelope records the model's config_hash; snnsec_serve refuses (warn +
// detection off) to score a different model with it. When the checkpoint
// does not exist yet a small model is trained there first, so the pair of
// commands above is a self-contained smoke run.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "obs/envelope.hpp"
#include "obs/sketch.hpp"
#include "serve/model_cache.hpp"
#include "serve_common.hpp"
#include "snn/anytime.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

using namespace snnsec;

int main(int argc, char** argv) {
  util::ArgParser args("snnsec_calibrate",
                       "calibrate a clean-traffic activity envelope");
  auto& model_path = args.add_string("model", "serve_model.snnm",
                                     "checkpoint path (trained if missing)");
  auto& out_path = args.add_string(
      "out", "", "envelope output path; default <model>.envelope");
  auto& samples =
      args.add_int("samples", 256, "clean calibration samples (train split)");
  auto& buckets =
      args.add_int("buckets", obs::SketchAccumulator::kDefaultBuckets,
                   "membrane histogram buckets per layer");
  auto& train_n = args.add_int("train", 600, "fallback-training samples");
  auto& test_n = args.add_int("test", 200, "test-split samples");
  auto& image = args.add_int("image-size", 16, "input resolution");
  auto& time_steps =
      args.add_int("time-steps", 16, "time window T for fallback training");
  auto& v_th = args.add_double("vth", 1.0, "threshold for fallback training");
  auto& epochs = args.add_int("epochs", 2, "fallback-training epochs");
  args.parse(argc, argv);

  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = test_n;
  dspec.image_size = image;
  const data::DataBundle bundle = data::load_digits(dspec);
  std::printf("data source: %s | train %s\n", bundle.source(),
              bundle.train.summary().c_str());

  if (!std::ifstream(model_path).good())
    tools::train_checkpoint(model_path, bundle, image, time_steps, v_th,
                            epochs);

  const auto artifact = serve::ModelCache::global().acquire(model_path);
  const auto model = artifact->make_replica();
  snn::AnytimeRunner runner(*model);
  obs::SketchAccumulator acc;
  acc.configure(runner.sketch_layers(), static_cast<int>(buckets));
  runner.set_sketch(&acc);

  const std::int64_t train_total = bundle.train.images.dim(0);
  const std::int64_t n = std::min<std::int64_t>(samples, train_total);
  SNNSEC_CHECK(n >= 2, "snnsec_calibrate: need at least 2 samples, have "
                           << n);
  std::printf("calibrating on %lld clean samples (T=%lld, %d buckets)\n",
              static_cast<long long>(n),
              static_cast<long long>(runner.time_steps()),
              acc.buckets());

  util::Stopwatch watch;
  std::vector<obs::ActivitySketch> sketches(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const tensor::Tensor x = nn::slice_batch(bundle.train.images, i, i + 1);
    runner.run(x);
    acc.finalize(0, sketches[static_cast<std::size_t>(i)]);
  }

  obs::ActivityEnvelope envelope;
  envelope.fit(sketches, runner.sketch_layers(), acc.buckets(),
               artifact->config_hash());
  const std::string out =
      out_path.empty() ? model_path + ".envelope" : out_path;
  envelope.save(out);
  std::printf("wrote %s (%s) in %.3fs\n", out.c_str(),
              envelope.summary().c_str(), watch.seconds());
  return 0;
}
