// snnsec_fleet: stand up a sharded (Vth, T) fleet behind the binary TCP
// front-end.
//
// Trains (or loads) one checkpoint per --vth/--steps pair, hosts each as a
// worker group of the fleet Router (first pair = low-latency cell, last =
// hardened cell, middle = balanced ensemble diversity), and serves the
// wire protocol on --port. Tenant convention, shared with snnsec_loadgen:
// tenant 1 is trusted, tenant 2 suspect, tenant 3 hostile; every other
// tenant id gets the default policy (--default-threat) and the optional
// --quota-rps/--quota-burst token bucket.
//
//   ./snnsec_fleet --model-dir /tmp/fleet --duration-s 30 &
//   ./snnsec_loadgen --connect 127.0.0.1:<port> --total 1000
//
// With --duration-s 0 the fleet runs until stdin reaches EOF (ctrl-d).
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "data/provider.hpp"
#include "fleet/frontend.hpp"
#include "fleet/router.hpp"
#include "serve_common.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace snnsec;

fleet::Threat parse_threat(const std::string& s) {
  if (s == "trusted") return fleet::Threat::kTrusted;
  if (s == "suspect") return fleet::Threat::kSuspect;
  if (s == "hostile") return fleet::Threat::kHostile;
  SNNSEC_FAIL("snnsec_fleet: unknown threat '"
              << s << "' (trusted | suspect | hostile)");
}

int run(int argc, const char* const* argv) {
  util::ArgParser args("snnsec_fleet",
                       "Sharded (Vth, T) fleet behind the TCP front-end");
  auto& model_dir = args.add_string(
      "model-dir",
      (std::filesystem::temp_directory_path() / "snnsec_fleet").string(),
      "directory for per-cell checkpoints (trained when missing)");
  auto& vths = args.add_double_list("vth", "0.9,1.1,1.4",
                                    "firing threshold per cell");
  auto& steps = args.add_int_list("steps", "8,12,16",
                                  "time window T per cell");
  auto& image = args.add_int("image", 16, "input image size");
  auto& epochs = args.add_int("epochs", 3, "training epochs per new cell");
  auto& train_n = args.add_int("train-n", 800, "training samples");
  auto& replicas = args.add_int("replicas", 1, "replicas per group");
  auto& port = args.add_int("port", 0, "TCP port (0 = ephemeral)");
  auto& executors = args.add_int("executors", 2, "executor threads");
  auto& max_conns = args.add_int("max-conns", 64, "connection limit");
  auto& queue = args.add_int("queue", 64, "dispatch ring depth");
  auto& quota_rps =
      args.add_double("quota-rps", 0.0, "default tenant rate (0 = none)");
  auto& quota_burst =
      args.add_double("quota-burst", 0.0, "default tenant burst tokens");
  auto& default_threat = args.add_string(
      "default-threat", "trusted", "policy for unknown tenants");
  auto& duration_s = args.add_int(
      "duration-s", 0, "serve this long, then exit (0 = until stdin EOF)");
  args.parse(argc, argv);

  SNNSEC_CHECK(vths.size() == steps.size(),
               "snnsec_fleet: --vth and --steps need one entry per cell");
  SNNSEC_CHECK(!vths.empty(), "snnsec_fleet: at least one cell required");

  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = 100;
  dspec.image_size = image;
  const data::DataBundle bundle = data::load_digits(dspec);
  std::filesystem::create_directories(model_dir);

  fleet::RouterConfig rc;
  for (std::size_t i = 0; i < vths.size(); ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "cell_vth%.2f_T%lld", vths[i],
                  static_cast<long long>(steps[i]));
    const std::string ckpt = model_dir + "/" + name + ".snnm";
    if (!std::filesystem::exists(ckpt))
      tools::train_checkpoint(ckpt, bundle, image, steps[i], vths[i],
                              epochs);
    fleet::GroupConfig g;
    g.name = name;
    g.role = i == 0 ? fleet::GroupRole::kLowLatency
             : i + 1 == vths.size() ? fleet::GroupRole::kHardened
                                    : fleet::GroupRole::kBalanced;
    g.model_path = ckpt;
    g.replicas = replicas;
    g.server.workers = 0;
    rc.groups.push_back(g);
  }
  const bool ensemble_ok = rc.groups.size() >= 3;
  rc.tenants.push_back({1, fleet::Threat::kTrusted, 0.0, 0.0});
  rc.tenants.push_back({2, fleet::Threat::kSuspect, 0.0, 0.0});
  if (ensemble_ok)
    rc.tenants.push_back({3, fleet::Threat::kHostile, 0.0, 0.0});
  rc.default_tenant.threat = parse_threat(default_threat);
  rc.default_tenant.rate_rps = quota_rps;
  rc.default_tenant.burst = quota_burst;

  fleet::Router router(std::move(rc));
  fleet::FrontendConfig fc;
  fc.port = static_cast<int>(port);
  fc.executors = executors;
  fc.max_connections = max_conns;
  fc.queue_capacity = queue;
  fleet::Frontend frontend(router, fc);
  std::printf("fleet: %lld groups on 127.0.0.1:%d (tenant 1 trusted, "
              "2 suspect%s)\n",
              static_cast<long long>(router.num_groups()), frontend.port(),
              ensemble_ok ? ", 3 hostile-ensemble" : "");
  std::fflush(stdout);

  if (duration_s > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
    }
  }

  frontend.stop();
  router.stop();
  const fleet::FrontendStats fs = frontend.stats();
  const fleet::RouterStats rs = router.stats();
  std::printf("frontend: %lld conns, %lld requests, %lld responses, "
              "%lld malformed, %lld shed\n",
              static_cast<long long>(fs.connections_accepted),
              static_cast<long long>(fs.requests),
              static_cast<long long>(fs.responses),
              static_cast<long long>(fs.malformed),
              static_cast<long long>(fs.shed));
  std::printf("router: %lld routed, %lld completed, %lld quota-rejected, "
              "%lld rerouted, %lld ensembles\n",
              static_cast<long long>(rs.requests),
              static_cast<long long>(rs.completed),
              static_cast<long long>(rs.quota_rejected),
              static_cast<long long>(rs.rerouted),
              static_cast<long long>(rs.ensembles));
  for (const auto& g : rs.groups)
    std::printf("  group %s (vth=%.2f T=%lld): %lld completed, %lld shed, "
                "%lld flagged\n",
                g.name.c_str(), g.v_th,
                static_cast<long long>(g.time_steps),
                static_cast<long long>(g.completed),
                static_cast<long long>(g.shed),
                static_cast<long long>(g.flagged));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
