// Helpers shared by the serve-path command-line tools (snnsec_serve,
// snnsec_calibrate): the self-contained fallback that trains and saves a
// small checkpoint when the requested one does not exist yet, so every tool
// works out of the box on the synthetic digits task.
#pragma once

#include <cstdio>
#include <string>

#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/env.hpp"

namespace snnsec::tools {

/// Train a half-width spiking LeNet on `bundle` and save it to `path`.
inline void train_checkpoint(const std::string& path,
                             const data::DataBundle& bundle,
                             std::int64_t image, std::int64_t time_steps,
                             double v_th, std::int64_t epochs) {
  std::printf("checkpoint %s not found; training a fresh model (T=%lld, "
              "vth=%.2f, %lld epochs)\n",
              path.c_str(), static_cast<long long>(time_steps), v_th,
              static_cast<long long>(epochs));
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = image;
  snn::SnnConfig cfg;
  cfg.v_th = v_th;
  cfg.time_steps = time_steps;
  util::Rng rng(util::master_seed());
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  nn::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.lr = 4e-3;
  tcfg.verbose = true;
  nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);
  const double clean =
      nn::accuracy(*model, bundle.test.images, bundle.test.labels);
  std::printf("trained: clean accuracy %.1f%%\n", clean * 100);
  snn::save_spiking_lenet(path, *model, arch, cfg);
}

}  // namespace snnsec::tools
