// snnsec_loadgen: reusable load generator for the serving stack.
//
// Drives either a fleet front-end over TCP (--connect host:port) or an
// in-process serve::Server (--model checkpoint, trained when missing) with
// the same engine the benches use (src/fleet/loadgen.hpp):
//
//   closed loop   --mode closed --total N --clients C
//   open loop     --mode open --rate RPS --total N
//   trace replay  --trace FILE ("tenant sample [deadline_us] [max_steps]")
//
// Traffic is drawn from the synthetic digits test split (or MNIST when
// MNIST_DIR is set); --mix "1:3,2:1" weights the tenant draw, e.g. 3:1
// trusted:suspect against the snnsec_fleet tenant convention. The report
// prints as one JSON object on stdout.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/provider.hpp"
#include "fleet/loadgen.hpp"
#include "serve_common.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace {

using namespace snnsec;

std::vector<fleet::TenantShare> parse_mix(const std::string& spec) {
  std::vector<fleet::TenantShare> mix;
  if (spec.empty()) return mix;
  for (const std::string& part : util::split(spec, ',')) {
    const auto fields = util::split(part, ':');
    SNNSEC_CHECK(fields.size() == 2,
                 "snnsec_loadgen: bad --mix entry '"
                     << part << "' (want tenant:weight)");
    fleet::TenantShare share;
    share.tenant = std::stoull(fields[0]);
    share.weight = std::stod(fields[1]);
    SNNSEC_CHECK(share.weight > 0, "snnsec_loadgen: --mix weight for tenant "
                                       << share.tenant
                                       << " must be positive");
    mix.push_back(share);
  }
  return mix;
}

void print_report(const fleet::LoadReport& r) {
  std::printf(
      "{\"offered\": %lld, \"completed\": %lld, \"shed\": %lld, "
      "\"quota_rejected\": %lld, \"errors\": %lld, \"truncated\": %lld, "
      "\"flagged\": %lld, \"wall_s\": %.3f, \"throughput_rps\": %.1f, "
      "\"offered_rps\": %.1f, \"p50_us\": %.0f, \"p95_us\": %.0f, "
      "\"p99_us\": %.0f, \"mean_batch\": %.2f}\n",
      static_cast<long long>(r.offered),
      static_cast<long long>(r.completed), static_cast<long long>(r.shed),
      static_cast<long long>(r.quota_rejected),
      static_cast<long long>(r.errors), static_cast<long long>(r.truncated),
      static_cast<long long>(r.flagged), r.wall_s, r.throughput_rps,
      r.offered_rps, r.p50_us, r.p95_us, r.p99_us, r.mean_batch);
}

int run(int argc, const char* const* argv) {
  util::ArgParser args("snnsec_loadgen",
                       "Load generator for fleet/serve targets");
  auto& connect = args.add_string(
      "connect", "", "fleet front-end host:port (TCP wire target)");
  auto& model = args.add_string(
      "model", "", "in-process server checkpoint (trained when missing)");
  auto& mode = args.add_string("mode", "closed", "closed | open");
  auto& total = args.add_int("total", 1000, "requests to offer");
  auto& clients = args.add_int("clients", 4, "client threads");
  auto& rate = args.add_double("rate", 500.0, "open-loop aggregate rps");
  auto& deadline_us =
      args.add_int("deadline-us", 0, "per-request deadline (0 = none)");
  auto& max_steps =
      args.add_int("max-steps", 0, "per-request step cap (0 = default)");
  auto& mix_spec = args.add_string(
      "mix", "", "tenant mix, e.g. \"1:3,2:1\" (empty = tenant 0)");
  auto& trace = args.add_string(
      "trace", "", "replay this trace file instead of synthetic load");
  auto& image = args.add_int("image", 16, "input image size");
  auto& test_n = args.add_int("test-n", 100, "image pool size");
  auto& seed = args.add_int("seed", 1, "tenant-draw seed");
  args.parse(argc, argv);

  SNNSEC_CHECK(connect.empty() != model.empty(),
               "snnsec_loadgen: exactly one of --connect or --model");

  data::DataSpec dspec;
  dspec.train_n = 400;
  dspec.test_n = test_n;
  dspec.image_size = image;
  const data::DataBundle bundle = data::load_digits(dspec);

  // Pick the target; the in-process path also owns its server.
  std::unique_ptr<serve::Server> server;
  std::unique_ptr<fleet::LoadTarget> target;
  if (!connect.empty()) {
    const auto parts = util::split(connect, ':');
    SNNSEC_CHECK(parts.size() == 2,
                 "snnsec_loadgen: --connect wants host:port, got '"
                     << connect << "'");
    const std::size_t payload =
        4 + 4 * static_cast<std::size_t>(image * image) + 1024;
    target = std::make_unique<fleet::WireTarget>(
        parts[0], std::stoi(parts[1]), payload);
  } else {
    if (!std::ifstream(model).good())
      tools::train_checkpoint(model, bundle, image, 12, 1.0, 2);
    serve::ServerConfig sc;
    sc.model_path = model;
    sc.workers = 0;
    server = std::make_unique<serve::Server>(sc);
    target = std::make_unique<fleet::ServerTarget>(*server);
  }

  fleet::LoadReport report;
  if (!trace.empty()) {
    std::ifstream in(trace);
    SNNSEC_CHECK(in.good(),
                 "snnsec_loadgen: cannot open trace '" << trace << "'");
    const auto entries = fleet::parse_trace(in);
    report = fleet::replay_trace(*target, bundle.test.images, entries,
                                 clients);
  } else {
    fleet::LoadSpec spec;
    if (mode == "closed") {
      spec.mode = fleet::LoadSpec::Mode::kClosed;
    } else if (mode == "open") {
      spec.mode = fleet::LoadSpec::Mode::kOpen;
    } else {
      SNNSEC_FAIL("snnsec_loadgen: unknown --mode '" << mode
                                                     << "' (closed | open)");
    }
    spec.total = total;
    spec.clients = clients;
    spec.rate_rps = rate;
    spec.options.deadline_us = deadline_us;
    spec.options.max_steps = max_steps;
    spec.mix = parse_mix(mix_spec);
    spec.seed = static_cast<std::uint64_t>(seed);
    report = fleet::run_load(*target, bundle.test.images, spec);
  }
  print_report(report);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
