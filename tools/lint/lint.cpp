#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "source_view.hpp"

namespace snnsec::lint {

namespace {

bool is_header(std::string_view path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

bool path_contains(std::string_view path, std::string_view frag) {
  return path.find(frag) != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Rule engine scaffolding.
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(const std::string& path, const std::string& content,
         const Options& opts)
      : path_(path), opts_(opts), view_(strip(content)) {
    // The hot-path marker must live in a comment: "// SNNSEC_HOT".
    for (const std::string& c : view_.comments)
      if (contains_word(c, "SNNSEC_HOT")) {
        hot_file_ = true;
        break;
      }
    joined_.reserve(content.size());
    for (const std::string& line : view_.code) {
      joined_ += line;
      joined_ += '\n';
    }
  }

  LintResult run() {
    rule_hot_alloc();
    rule_rng();
    rule_parallel_capture();
    rule_float_eq();
    rule_header_hygiene();
    rule_layer_contract();
    rule_nolint_justification();
    std::sort(result_.findings.begin(), result_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(result_);
  }

 private:
  void report(int line, std::string rule, std::string message,
              std::string suggestion = {}) {
    Finding f{path_, line, "snnsec-" + rule, std::move(message),
              std::move(suggestion)};
    if (suppressed(line, f.rule)) {
      result_.suppressed.push_back(std::move(f));
    } else {
      result_.findings.push_back(std::move(f));
    }
  }

  bool suppressed(int line, const std::string& rule) const {
    return suppressed_at(view_, line, rule);
  }

  // R1 — heap traffic in SNNSEC_HOT files.
  void rule_hot_alloc() {
    if (!hot_file_) return;
    static constexpr std::string_view kGrowth[] = {
        ".resize(", ".reserve(", ".push_back(", ".emplace_back(", ".assign("};
    for (std::size_t i = 0; i < view_.code.size(); ++i) {
      const std::string& c = view_.code[i];
      const int line = static_cast<int>(i) + 1;
      if (contains_word(c, "new") || contains_word(c, "malloc") ||
          contains_word(c, "calloc") || contains_word(c, "realloc")) {
        report(line, "hot-alloc",
               "naked heap allocation in a SNNSEC_HOT file",
               "take scratch from util::Workspace::local() inside a "
               "Workspace::Scope");
      }
      for (const std::string_view g : kGrowth) {
        if (c.find(g) != std::string::npos) {
          report(line, "hot-alloc",
                 std::string("container growth (") + std::string(g) +
                     "...) in a SNNSEC_HOT file",
                 "pre-size outside the hot loop or use util::Workspace "
                 "scratch");
          break;
        }
      }
    }
  }

  // R2 — nondeterministic randomness outside src/util/rng*.
  void rule_rng() {
    if (path_contains(path_, "src/util/rng")) return;
    static constexpr std::string_view kEngines[] = {
        "std::random_device", "std::mt19937", "std::minstd_rand",
        "std::default_random_engine"};
    for (std::size_t i = 0; i < view_.code.size(); ++i) {
      const std::string& c = view_.code[i];
      const int line = static_cast<int>(i) + 1;
      for (const std::string_view e : kEngines) {
        if (c.find(e) != std::string::npos) {
          report(line, "rng",
                 std::string(e) + " breaks bit-deterministic sweeps",
                 "derive a stream from util::Rng::fork() so crash-safe "
                 "resume stays byte-identical");
          break;
        }
      }
      if (contains_word(c, "rand") || contains_word(c, "srand")) {
        report(line, "rng", "C rand()/srand() is not reproducible",
               "use util::Rng");
      }
      // time()- or clock-derived seeds.
      const bool time_call = find_word(c, "time") != std::string::npos &&
                             (c.find("time(0") != std::string::npos ||
                              c.find("time(NULL") != std::string::npos ||
                              c.find("time(nullptr") != std::string::npos);
      const bool chrono_seed = c.find("std::chrono") != std::string::npos &&
                               contains_word(c, "seed");
      if (time_call || chrono_seed) {
        report(line, "rng", "wall-clock-derived seed breaks reproducibility",
               "seeds must come from the experiment config master seed");
      }
    }
  }

  // R3 — shared mutable state captured by reference into parallel_for bodies.
  void rule_parallel_capture() {
    static constexpr std::string_view kSensitive[] = {"ws", "workspace",
                                                      "logger", "sink",
                                                      "metrics_sink"};
    std::size_t pos = 0;
    while (true) {
      std::size_t call = find_word(joined_, "parallel_for", pos);
      const std::size_t call_chunked =
          find_word(joined_, "parallel_for_chunked", pos);
      call = std::min(call, call_chunked);
      if (call == std::string::npos) return;
      const std::size_t open = joined_.find('(', call);
      if (open == std::string::npos) return;
      pos = open + 1;
      const std::size_t close = match(open, '(', ')');
      if (close == std::string::npos) return;
      const std::size_t lb = joined_.find('[', open);
      if (lb == std::string::npos || lb > close) continue;  // no lambda arg
      const std::size_t rb = match(lb, '[', ']');
      if (rb == std::string::npos || rb > close) continue;
      const std::string captures = joined_.substr(lb + 1, rb - lb - 1);
      const std::size_t body_open = joined_.find('{', rb);
      if (body_open == std::string::npos || body_open > close) continue;
      const std::size_t body_close = match(body_open, '{', '}');
      if (body_close == std::string::npos) continue;
      const std::string_view body(joined_.data() + body_open + 1,
                                  body_close - body_open - 1);
      const bool capture_all_ref = captures.find('&') != std::string::npos &&
                                   captures.find("&&") == std::string::npos;
      const bool has_guard = body.find("::local(") != std::string_view::npos ||
                             body.find("thread_local") !=
                                 std::string_view::npos;
      for (const std::string_view name : kSensitive) {
        bool explicit_ref = false;
        for (std::size_t q = captures.find('&'); q != std::string::npos;
             q = captures.find('&', q + 1)) {
          const std::size_t b = q + 1;
          if (captures.compare(b, name.size(), name) == 0 &&
              (b + name.size() >= captures.size() ||
               !ident_char(captures[b + name.size()]))) {
            explicit_ref = true;
            break;
          }
        }
        std::size_t use = find_word(body, name);
        bool used = false;
        while (use != std::string_view::npos) {
          const std::size_t after = use + name.size();
          std::size_t k = after;
          while (k < body.size() &&
                 std::isspace(static_cast<unsigned char>(body[k])))
            ++k;
          if (k < body.size() &&
              (body[k] == '.' ||
               (body[k] == '-' && k + 1 < body.size() && body[k + 1] == '>'))) {
            used = true;
            break;
          }
          use = find_word(body, name, use + 1);
        }
        if (used && (explicit_ref || capture_all_ref) && !has_guard) {
          report(line_of(lb), "parallel-capture",
                 "parallel_for body uses `" + std::string(name) +
                     "` captured by reference; workers would share one "
                     "mutable instance",
                 "re-derive a per-thread handle inside the body "
                 "(util::Workspace::local() guard pattern) or pass by value");
          break;
        }
      }
    }
  }

  // R4 — bare float ==/!=.
  void rule_float_eq() {
    for (std::size_t i = 0; i < view_.code.size(); ++i) {
      const std::string& c = view_.code[i];
      for (std::size_t p = 0; p + 1 < c.size(); ++p) {
        if (c[p + 1] != '=' || (c[p] != '=' && c[p] != '!')) continue;
        if (p > 0 && (c[p - 1] == '<' || c[p - 1] == '>' || c[p - 1] == '=' ||
                      c[p - 1] == '!'))
          continue;
        if (p + 2 < c.size() && c[p + 2] == '=') continue;
        const std::string prev = token_before(c, p);
        const std::string next = token_after(c, p + 2);
        if (prev == "operator") continue;
        if (float_literal(prev) || float_literal(next)) {
          report(static_cast<int>(i) + 1, "float-eq",
                 "bare floating-point " + std::string(1, c[p]) +
                     "= comparison against `" +
                     (float_literal(prev) ? prev : next) + "`",
                 "compare |a-b| against a tolerance, or justify exactness "
                 "with NOLINT(snnsec-float-eq): <why exact>");
          ++p;
        }
      }
    }
  }

  // R5 — header hygiene.
  void rule_header_hygiene() {
    if (!is_header(path_)) return;
    bool pragma = false;
    for (const std::string& c : view_.code)
      if (c.find("#pragma once") != std::string::npos) pragma = true;
    if (!pragma)
      report(1, "header-hygiene", "header is missing #pragma once",
             "add `#pragma once` after the file comment");
    for (std::size_t i = 0; i < view_.code.size(); ++i) {
      const std::size_t p = view_.code[i].find("using namespace");
      if (p != std::string::npos)
        report(static_cast<int>(i) + 1, "header-hygiene",
               "`using namespace` at header scope leaks into every includer",
               "qualify names or move the using-directive into a function "
               "body in a .cpp");
    }
  }

  // R6 — Layer subclass contract + serialization registry membership.
  void rule_layer_contract() {
    if (!is_header(path_)) return;
    if (!(path_contains(path_, "src/nn") || path_contains(path_, "src/snn")))
      return;
    std::size_t pos = 0;
    while (true) {
      const std::size_t cls = find_word(joined_, "class", pos);
      if (cls == std::string::npos) return;
      pos = cls + 5;
      const std::size_t brace = joined_.find('{', cls);
      const std::size_t semi = joined_.find(';', cls);
      if (brace == std::string::npos) return;
      if (semi != std::string::npos && semi < brace) continue;  // fwd decl
      const std::string head = joined_.substr(cls, brace - cls);
      const std::size_t colon = head.find(':');
      if (colon == std::string::npos) continue;
      const std::string_view bases = std::string_view(head).substr(colon + 1);
      if (!(contains_word(bases, "Layer") ||
            contains_word(bases, "BatchNormBase")))
        continue;
      std::istringstream hs(head.substr(5, colon - 5));
      std::string name_tok, cur;
      bool is_final = false;
      while (hs >> cur) {
        if (cur == "final")
          is_final = true;
        else
          name_tok = cur;
      }
      if (!is_final) continue;  // abstract bases define the contract partially
      const std::size_t end = match(brace, '{', '}');
      if (end == std::string::npos) return;
      const std::string_view body(joined_.data() + brace + 1,
                                  end - brace - 1);
      const int line = line_of(cls);
      const auto overrides = [&](std::string_view fn) {
        std::size_t q = find_word(body, fn);
        while (q != std::string_view::npos) {
          const std::size_t paren = body.find('(', q);
          if (paren != std::string_view::npos &&
              body.find("override", q) != std::string_view::npos)
            return true;
          q = find_word(body, fn, q + 1);
        }
        return false;
      };
      for (const std::string_view fn :
           {std::string_view("forward"), std::string_view("backward"),
            std::string_view("kind")}) {
        if (!overrides(fn))
          report(line, "layer-contract",
                 "Layer subclass `" + name_tok + "` does not override " +
                     std::string(fn) + "()",
                 "every concrete layer implements forward/backward (manual "
                 "backprop contract) and kind() (serialization identity)");
      }
      if (!opts_.registry_source.empty() &&
          opts_.registry_source.find('"' + name_tok + '"') ==
              std::string::npos) {
        report(line, "layer-contract",
               "Layer subclass `" + name_tok +
                   "` is missing from the serialization registry",
               "add {\"" + name_tok +
                   "\", ...} to src/nn/layer_registry.cpp so checkpoints "
                   "fingerprint the architecture");
      }
      pos = end;
    }
  }

  // Meta-rule — snnsec NOLINTs demand a justification.
  void rule_nolint_justification() {
    for (std::size_t i = 0; i < view_.comments.size(); ++i) {
      for (const Suppression& s : parse_suppressions(view_.comments[i])) {
        if (!s.justified) {
          result_.findings.push_back(
              Finding{path_, static_cast<int>(i) + 1,
                      "snnsec-nolint-justification",
                      "NOLINT(" + (s.rules.empty() ? "" : s.rules.front()) +
                          ") without a justification — suppression ignored",
                      "write `NOLINT(snnsec-<rule>): <why this line is "
                      "exempt>`"});
        }
      }
    }
  }

  // --- helpers -----------------------------------------------------------

  /// Index of the character matching the opener at `open` in joined_.
  std::size_t match(std::size_t open, char lhs, char rhs) const {
    int depth = 0;
    for (std::size_t i = open; i < joined_.size(); ++i) {
      if (joined_[i] == lhs) ++depth;
      if (joined_[i] == rhs && --depth == 0) return i;
    }
    return std::string::npos;
  }

  int line_of(std::size_t offset) const {
    return 1 + static_cast<int>(
                   std::count(joined_.begin(),
                              joined_.begin() +
                                  static_cast<std::ptrdiff_t>(offset), '\n'));
  }

  static std::string token_before(const std::string& s, std::size_t p) {
    std::size_t e = p;
    while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    std::size_t b = e;
    while (b > 0 &&
           (ident_char(s[b - 1]) || s[b - 1] == '.' ||
            // a +/- glued to a preceding e/E is an exponent sign (1e-3)
            ((s[b - 1] == '-' || s[b - 1] == '+') && b >= 2 &&
             (s[b - 2] == 'e' || s[b - 2] == 'E'))))
      --b;
    return s.substr(b, e - b);
  }

  static std::string token_after(const std::string& s, std::size_t p) {
    std::size_t b = p;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    if (b < s.size() && (s[b] == '-' || s[b] == '+')) ++b;  // signed literal
    std::size_t e = b;
    while (e < s.size() &&
           (ident_char(s[e]) || s[e] == '.' ||
            ((s[e] == '-' || s[e] == '+') && e > b &&
             (s[e - 1] == 'e' || s[e - 1] == 'E'))))
      ++e;
    return s.substr(b, e - b);
  }

  /// "1.0f", "0.", ".5", "1e-3f", "2.5e4" — digits with a dot or exponent.
  static bool float_literal(const std::string& tok) {
    if (tok.empty()) return false;
    bool digit = false, dot = false, exp = false;
    for (std::size_t i = 0; i < tok.size(); ++i) {
      const char c = tok[i];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digit = true;
      } else if (c == '.') {
        if (dot) return false;
        dot = true;
      } else if ((c == 'e' || c == 'E') && digit && !exp && i + 1 < tok.size()) {
        exp = true;
      } else if ((c == '-' || c == '+') && i > 0 &&
                 (tok[i - 1] == 'e' || tok[i - 1] == 'E')) {
        // exponent sign
      } else if ((c == 'f' || c == 'F') && i == tok.size() - 1) {
        // suffix ok
      } else {
        return false;
      }
    }
    return digit && (dot || exp);
  }

  const std::string path_;
  const Options& opts_;
  SourceView view_;
  std::string joined_;
  bool hot_file_ = false;
  LintResult result_;
};

}  // namespace

const std::vector<std::string_view>& rule_ids() {
  static const std::vector<std::string_view> kIds = {
      "hot-alloc",       "rng",           "parallel-capture",
      "float-eq",        "header-hygiene", "layer-contract",
      "nolint-justification"};
  return kIds;
}

LintResult lint_source(const std::string& path, const std::string& content,
                       const Options& opts) {
  return Linter(path, content, opts).run();
}

LintResult lint_file(const std::string& path, const Options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snnsec_lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str(), opts);
}

bool lintable_file(std::string_view path) {
  return path.ends_with(".hpp") || path.ends_with(".h") ||
         path.ends_with(".cpp") || path.ends_with(".cc");
}

// --- shared-cache plumbing -------------------------------------------------
//
// Payload: one record per line; fields separated by 0x1f (unit separator,
// which cannot appear in rule IDs and never appears in the messages the
// rules emit). First field tags the record: F = finding, S = suppressed.

std::string_view lint_cache_version() { return "lint-v1"; }

namespace {

constexpr char kFieldSep = '\x1f';

void append_record(std::string& out, char tag, const Finding& f) {
  out += tag;
  out += kFieldSep;
  out += std::to_string(f.line);
  out += kFieldSep;
  out += f.rule;
  out += kFieldSep;
  out += f.message;
  out += kFieldSep;
  out += f.suggestion;
  out += '\n';
}

}  // namespace

std::string serialize_result(const LintResult& result) {
  std::string out;
  for (const Finding& f : result.findings) append_record(out, 'F', f);
  for (const Finding& f : result.suppressed) append_record(out, 'S', f);
  return out;
}

bool deserialize_result(const std::string& payload, const std::string& path,
                        LintResult& out) {
  out = {};
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (pos <= line.size()) {
      const std::size_t sep = line.find(kFieldSep, pos);
      if (sep == std::string::npos) {
        fields.push_back(line.substr(pos));
        break;
      }
      fields.push_back(line.substr(pos, sep - pos));
      pos = sep + 1;
    }
    if (fields.size() != 5 || fields[0].size() != 1) return false;
    Finding f{path, 0, fields[2], fields[3], fields[4]};
    try {
      f.line = std::stoi(fields[1]);
    } catch (const std::exception&) {
      return false;
    }
    if (fields[0][0] == 'F') {
      out.findings.push_back(std::move(f));
    } else if (fields[0][0] == 'S') {
      out.suppressed.push_back(std::move(f));
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace snnsec::lint
