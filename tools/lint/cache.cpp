#include "cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace snnsec::lint {

namespace {

constexpr std::string_view kMagic = "snnsec-cache v1 ";

}  // namespace

FileCache::FileCache(std::string path, std::string version)
    : path_(std::move(path)), version_(std::move(version)) {
  if (path_.empty()) return;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;
  std::string header;
  if (!std::getline(in, header)) return;
  if (header != std::string(kMagic) + version_) return;  // stale rule set
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream head(line);
    std::string digest_hex;
    std::size_t bytes = 0;
    std::string file;
    if (!(head >> digest_hex >> bytes)) break;
    std::getline(head >> std::ws, file);
    if (file.empty()) break;
    Entry e;
    e.digest = std::stoull(digest_hex, nullptr, 16);
    e.payload.resize(bytes);
    if (bytes > 0 && !in.read(e.payload.data(),
                              static_cast<std::streamsize>(bytes)))
      break;
    in.get();  // trailing newline
    entries_[file] = std::move(e);
  }
}

std::optional<std::string> FileCache::lookup(const std::string& file,
                                             std::uint64_t digest) {
  const auto it = entries_.find(file);
  if (it != entries_.end() && it->second.digest == digest) {
    ++hits_;
    return it->second.payload;
  }
  ++misses_;
  return std::nullopt;
}

void FileCache::store(const std::string& file, std::uint64_t digest,
                      std::string payload) {
  entries_[file] = Entry{digest, std::move(payload)};
}

bool FileCache::save() const {
  if (path_.empty()) return true;
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << kMagic << version_ << "\n";
    char hex[17];
    for (const auto& [file, e] : entries_) {
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(e.digest));
      out << hex << " " << e.payload.size() << " " << file << "\n"
          << e.payload << "\n";
    }
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path_.c_str()) == 0;
}

}  // namespace snnsec::lint
