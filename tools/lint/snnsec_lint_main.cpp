// snnsec_lint CLI: scan the tree for project-invariant violations.
//
// Usage:
//   snnsec_lint [--root DIR] [--cache FILE] [--report] [--suggest]
//               [--verbose] [--list-rules] [dirs...]
//
// With no positional dirs, scans src/, bench/ and tests/ under --root.
// --cache FILE keeps a content-hash result cache so unchanged files are not
// re-linted (hit/miss counts printed with --verbose).
// Exit status: 0 when clean, 1 on findings, 2 on usage/IO errors.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cache.hpp"
#include "lint.hpp"
#include "source_view.hpp"

namespace fs = std::filesystem;
using snnsec::lint::Finding;
using snnsec::lint::LintResult;
using snnsec::lint::Options;

namespace {

std::string read_file_or_empty(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_usage() {
  std::cout <<
      "snnsec_lint [--root DIR] [--cache FILE] [--report] [--suggest] "
      "[--verbose] [--list-rules] [dirs...]\n"
      "  Scans dirs (default: src bench tests) for snnsec invariant "
      "violations.\n"
      "  Suppress a line with `// NOLINT(snnsec-<rule>): <justification>`.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string cache_path;
  std::vector<std::string> dirs;
  bool report = false, suggest = false, verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--suggest") {
      suggest = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-rules") {
      for (const auto id : snnsec::lint::rule_ids())
        std::cout << "snnsec-" << id << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "snnsec_lint: unknown option " << arg << "\n";
      print_usage();
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "bench", "tests"};

  Options opts;
  opts.registry_source =
      read_file_or_empty(fs::path(root) / "src" / "nn" / "layer_registry.cpp");

  // Findings depend on the registry contents too, so fold its digest into
  // the cache version: a registry edit invalidates the whole cache.
  char reg_hex[17];
  std::snprintf(reg_hex, sizeof reg_hex, "%016llx",
                static_cast<unsigned long long>(
                    snnsec::lint::fnv1a(opts.registry_source)));
  snnsec::lint::FileCache cache(
      cache_path, std::string(snnsec::lint::lint_cache_version()) + "+" +
                      reg_hex);

  std::vector<Finding> findings;
  std::size_t files = 0, suppressed = 0;
  std::map<std::string, std::size_t> by_rule;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) {
      std::cerr << "snnsec_lint: no such directory: " << base.string() << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string path = entry.path().generic_string();
      if (!snnsec::lint::lintable_file(path)) continue;
      ++files;
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << "snnsec_lint: cannot read " << path << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string content = buf.str();
      const std::uint64_t digest = snnsec::lint::fnv1a(content);
      LintResult res;
      bool cached = false;
      if (const auto payload = cache.lookup(path, digest)) {
        cached = snnsec::lint::deserialize_result(*payload, path, res);
      }
      if (!cached) {
        res = snnsec::lint::lint_source(path, content, opts);
        cache.store(path, digest, snnsec::lint::serialize_result(res));
      }
      suppressed += res.suppressed.size();
      for (Finding& f : res.findings) {
        ++by_rule[f.rule];
        findings.push_back(std::move(f));
      }
    }
  }
  if (!cache.save())
    std::cerr << "snnsec_lint: warning: could not write cache " << cache_path
              << "\n";

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
    if (suggest && !f.suggestion.empty())
      std::cout << "    fix: " << f.suggestion << "\n";
  }
  if (report) {
    std::cout << "---- snnsec_lint report ----\n";
    for (const auto& [rule, count] : by_rule)
      std::cout << "  " << rule << ": " << count << "\n";
  }
  if (verbose)
    std::cout << "snnsec_lint: cache " << cache.hits() << " hit(s), "
              << cache.misses() << " miss(es)\n";
  std::cout << "snnsec_lint: " << files << " files, " << findings.size()
            << " finding(s), " << suppressed
            << " justified suppression(s)\n";
  return findings.empty() ? 0 : 1;
}
