// snnsec_lint: project-invariant static analysis for the snnsec tree.
//
// A deliberately small token/line-level scanner (no libclang): the invariants
// it enforces were all introduced by past PRs and are syntactically local, so
// a lexer that understands comments, string literals and balanced brackets is
// enough — and it builds in milliseconds on every commit.
//
// Rules (IDs are stable; suppress with `// NOLINT(snnsec-<rule>): <why>`):
//   R1 snnsec-hot-alloc        no naked new/malloc/container growth in files
//                              carrying a `// SNNSEC_HOT` comment marker;
//                              steady-state scratch must come from
//                              util::Workspace (zero-alloc hot paths).
//   R2 snnsec-rng              no std::random_device / std::mt19937 / rand()
//                              / time()- or chrono-derived seeds outside
//                              src/util/rng* — every stream must descend from
//                              the master seed (bit-deterministic sweeps).
//   R3 snnsec-parallel-capture parallel_for bodies must not use a Workspace /
//                              Logger / metrics sink captured by reference
//                              unless the body re-derives a thread-local
//                              handle (Workspace::local() guard pattern).
//   R4 snnsec-float-eq         no bare ==/!= against floating-point literals;
//                              exact comparisons (spike 0/1 values, encoded
//                              format tags) need a justified NOLINT.
//   R5 snnsec-header-hygiene   headers use #pragma once and never `using
//                              namespace` at header scope.
//   R6 snnsec-layer-contract   every final nn::Layer subclass in src/nn and
//                              src/snn overrides forward(), backward() and
//                              kind(), and its kind string appears in the
//                              serialization registry
//                              (src/nn/layer_registry.cpp).
//
// Suppression contract: `NOLINT(snnsec-<rule>)` must appear in a *comment* on
// the offending line (or `NOLINTNEXTLINE(...)` on the line before) and must
// be followed by `: <justification>`. A snnsec NOLINT without a justification
// is itself a finding (snnsec-nolint-justification) and does not suppress.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace snnsec::lint {

struct Finding {
  std::string file;        ///< path label as given to lint_source
  int line = 0;            ///< 1-based line number
  std::string rule;        ///< e.g. "snnsec-float-eq"
  std::string message;     ///< human-readable description
  std::string suggestion;  ///< mechanical fix hint for --suggest mode
};

struct LintResult {
  std::vector<Finding> findings;    ///< violations to report
  std::vector<Finding> suppressed;  ///< findings silenced by justified NOLINT
};

struct Options {
  /// Contents of src/nn/layer_registry.cpp; when non-empty, R6 additionally
  /// requires every final Layer subclass's kind string to appear in it.
  std::string registry_source;
};

/// All stable rule IDs (without the "snnsec-" prefix), for --list-rules.
const std::vector<std::string_view>& rule_ids();

/// Lint one translation unit given as a string. `path` is only a label, but
/// rule applicability keys off it (headers vs sources, allowlisted dirs).
LintResult lint_source(const std::string& path, const std::string& content,
                       const Options& opts = {});

/// Lint a file on disk. Throws std::runtime_error when unreadable.
LintResult lint_file(const std::string& path, const Options& opts = {});

/// True for the extensions the tree scan considers (.hpp/.h/.cpp/.cc).
bool lintable_file(std::string_view path);

// --- shared-cache plumbing (see tools/lint/cache.hpp) ----------------------

/// Version stamp covering the rule set and the payload format below. Bump
/// whenever either changes so stale caches self-invalidate.
std::string_view lint_cache_version();

/// Serialize a per-file result for the FileCache payload (file paths are the
/// cache key and are not stored).
std::string serialize_result(const LintResult& result);

/// Inverse of serialize_result; `path` re-labels the findings. Returns false
/// on a malformed payload (treat as a cache miss).
bool deserialize_result(const std::string& payload, const std::string& path,
                        LintResult& out);

}  // namespace snnsec::lint
