// Content-hash result cache shared by snnsec_lint and snnsec_analyze.
//
// Keyed on (path, FNV-1a content digest) and stamped with a tool version
// string that callers bump whenever the rule set or the serialized payload
// format changes — a version mismatch discards the whole cache. The payload
// is an opaque text blob: snnsec_lint stores serialized findings per file,
// snnsec_analyze stores the serialized per-file semantic model. Incremental
// tree scans then only re-parse files whose bytes changed.
//
// On-disk format (text, length-prefixed payloads so they may contain
// anything):
//   snnsec-cache v1 <tool-version>\n
//   <digest-hex> <payload-bytes> <path>\n
//   <payload>\n
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace snnsec::lint {

class FileCache {
 public:
  /// Loads `path` if it exists and its version stamp matches `version`.
  /// An empty `path` makes the cache a no-op (every lookup misses, save()
  /// does nothing) so callers need no branching.
  FileCache(std::string path, std::string version);

  /// Payload for `file` when cached under the same content digest.
  /// Counts a hit or a miss.
  std::optional<std::string> lookup(const std::string& file,
                                    std::uint64_t digest);

  /// Record the payload for `file` at `digest` (replaces any stale entry).
  void store(const std::string& file, std::uint64_t digest,
             std::string payload);

  /// Write the cache back to disk (write-temp-then-rename). Returns false
  /// on IO failure; the cache is an accelerator, so callers may ignore it.
  bool save() const;

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t entries() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t digest = 0;
    std::string payload;
  };
  std::string path_;
  std::string version_;
  std::unordered_map<std::string, Entry> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace snnsec::lint
