#include "source_view.hpp"

#include <cctype>
#include <sstream>

namespace snnsec::lint {

SourceView strip(const std::string& content) {
  SourceView v;
  std::string code_line, comment_line, raw_line;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State st = State::kCode;
  std::string raw_delim;  // for raw string literals: ")<delim>"
  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      v.code.push_back(code_line);
      v.comments.push_back(comment_line);
      v.raw.push_back(raw_line);
      code_line.clear();
      comment_line.clear();
      raw_line.clear();
      if (st == State::kLine) st = State::kCode;
      continue;
    }
    raw_line += c;
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLine;
          code_line += "  ";
          raw_line += next;
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::kBlock;
          code_line += "  ";
          raw_line += next;
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R / uR / u8R / LR prefix.
          bool raw = false;
          if (!code_line.empty() && code_line.back() == 'R') {
            const std::size_t len = code_line.size();
            const bool prefixed =
                len < 2 || !(std::isalnum(static_cast<unsigned char>(
                                 code_line[len - 2])) ||
                             code_line[len - 2] == '_');
            raw = prefixed || (len >= 2 && (code_line[len - 2] == 'u' ||
                                            code_line[len - 2] == 'U' ||
                                            code_line[len - 2] == 'L' ||
                                            code_line[len - 2] == '8'));
          }
          if (raw) {
            raw_delim = ")";
            std::size_t j = i + 1;
            while (j < n && content[j] != '(') raw_delim += content[j++];
            raw_delim += '"';
            st = State::kRaw;
          } else {
            st = State::kString;
          }
          code_line += '"';
        } else if (c == '\'') {
          st = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLine:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          st = State::kCode;
          code_line += "  ";
          raw_line += next;
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          if (next != '\0' && next != '\n') raw_line += next;
          ++i;
          if (next == '\0') break;
        } else if (c == '"') {
          st = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          if (next != '\0' && next != '\n') raw_line += next;
          ++i;
          if (next == '\0') break;
        } else if (c == '\'') {
          st = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
      case State::kRaw:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Blank all but the newlines inside the terminator span.
          raw_line += content.substr(i + 1, raw_delim.size() - 1);
          i += raw_delim.size() - 1;
          st = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  v.code.push_back(code_line);
  v.comments.push_back(comment_line);
  v.raw.push_back(raw_line);
  return v;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::size_t find_word(std::string_view s, std::string_view word,
                      std::size_t from) {
  while (true) {
    const std::size_t p = s.find(word, from);
    if (p == std::string_view::npos) return p;
    const bool left_ok = p == 0 || !ident_char(s[p - 1]);
    const std::size_t after = p + word.size();
    const bool right_ok = after >= s.size() || !ident_char(s[after]);
    if (left_ok && right_ok) return p;
    from = p + 1;
  }
}

bool contains_word(std::string_view s, std::string_view word) {
  return find_word(s, word) != std::string_view::npos;
}

std::vector<Suppression> parse_suppressions(const std::string& comment) {
  std::vector<Suppression> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t at = comment.find("NOLINT", pos);
    if (at == std::string::npos) break;
    std::size_t cur = at + 6;
    Suppression s;
    if (comment.compare(cur, 8, "NEXTLINE") == 0) {
      s.next_line = true;
      cur += 8;
    }
    if (cur >= comment.size() || comment[cur] != '(') {
      pos = cur;  // bare NOLINT (e.g. for clang-tidy) — not ours
      continue;
    }
    const std::size_t close = comment.find(')', cur);
    if (close == std::string::npos) break;
    std::stringstream list(comment.substr(cur + 1, close - cur - 1));
    std::string item;
    bool ours = false;
    while (std::getline(list, item, ',')) {
      const std::size_t b = item.find_first_not_of(" \t");
      const std::size_t e = item.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      item = item.substr(b, e - b + 1);
      if (item.rfind("snnsec-", 0) == 0) {
        s.rules.push_back(item);
        ours = true;
      }
    }
    if (ours) {
      // Justification: "): <non-empty text>".
      std::size_t j = close + 1;
      if (j < comment.size() && comment[j] == ':') {
        ++j;
        while (j < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[j])))
          ++j;
        s.justified = j < comment.size();
      }
      out.push_back(std::move(s));
    }
    pos = close + 1;
  }
  return out;
}

bool suppressed_at(const SourceView& view, int line, const std::string& rule) {
  const auto applies = [&](const std::string& comment, bool want_next) {
    for (const Suppression& s : parse_suppressions(comment)) {
      if (s.next_line != want_next || !s.justified) continue;
      for (const std::string& r : s.rules)
        if (r == rule) return true;
    }
    return false;
  };
  const std::size_t i = static_cast<std::size_t>(line - 1);
  if (i < view.comments.size() && applies(view.comments[i], false))
    return true;
  return i >= 1 && i - 1 < view.comments.size() &&
         applies(view.comments[i - 1], true);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace snnsec::lint
