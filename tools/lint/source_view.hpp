// Shared source model for the snnsec analysis tools (snnsec_lint and
// snnsec_analyze): a comment/string-stripping state machine producing a
// per-line "code view" (literal and comment contents blanked, so fixture
// snippets embedded in test string literals can never trigger rules), the
// comment text per line (markers and NOLINT directives are only honored
// inside real comments), and the raw lines (for tools that must look inside
// string literals deliberately, e.g. metric-name collection).
//
// Also home to the NOLINT suppression contract both tools share:
// `NOLINT(snnsec-<rule>): <justification>` on the offending line, or
// `NOLINTNEXTLINE(...)` on the line before. A snnsec NOLINT without a
// justification is itself a finding and suppresses nothing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace snnsec::lint {

struct SourceView {
  std::vector<std::string> code;      ///< per-line, literals/comments blanked
  std::vector<std::string> comments;  ///< per-line, concatenated comment text
  std::vector<std::string> raw;       ///< per-line, verbatim source text
};

/// Build the three aligned per-line views of a translation unit.
SourceView strip(const std::string& content);

/// True for identifier characters [A-Za-z0-9_].
bool ident_char(char c);

/// Position of whole-word `word` in `s` starting at `from`, or npos.
std::size_t find_word(std::string_view s, std::string_view word,
                      std::size_t from = 0);

bool contains_word(std::string_view s, std::string_view word);

// ---------------------------------------------------------------------------
// NOLINT handling. A suppression for rule R applies to line L when a comment
// on L (or a NOLINTNEXTLINE comment on L-1) names snnsec-R and carries a
// non-empty justification after "):". An unjustified snnsec NOLINT is itself
// reported and suppresses nothing.
// ---------------------------------------------------------------------------

struct Suppression {
  std::vector<std::string> rules;  ///< rule IDs with the snnsec- prefix
  bool justified = false;
  bool next_line = false;
};

std::vector<Suppression> parse_suppressions(const std::string& comment);

/// True when `rule` (with the snnsec- prefix) is suppressed at 1-based `line`
/// by a justified NOLINT on the line or NOLINTNEXTLINE on the line before.
bool suppressed_at(const SourceView& view, int line, const std::string& rule);

/// FNV-1a 64-bit digest, the cache key for file contents.
std::uint64_t fnv1a(std::string_view s);

}  // namespace snnsec::lint
